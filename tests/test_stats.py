"""Tests for the statistical validation utilities and the sample-based estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    Estimate,
    chi_square_goodness_of_fit,
    chi_square_uniformity,
    chi_square_weighted,
    empirical_frequencies,
    estimate_mean,
    estimate_proportion,
    estimate_result_statistic,
    estimate_sum,
    total_variation_distance,
)
from repro import Interval


class TestEmpiricalFrequencies:
    def test_basic_counting(self):
        assert empirical_frequencies([1, 2, 2, 3, 3, 3]) == {1: 1, 2: 2, 3: 3}

    def test_empty(self):
        assert empirical_frequencies([]) == {}


class TestChiSquare:
    def test_uniform_samples_not_rejected(self):
        rng = np.random.default_rng(0)
        population = list(range(50))
        samples = rng.integers(0, 50, 5000).tolist()
        fit = chi_square_uniformity(samples, population)
        assert fit.p_value > 1e-4
        assert not fit.rejects_uniformity()

    def test_biased_samples_are_rejected(self):
        population = list(range(10))
        samples = [0] * 900 + [1] * 100  # heavily biased toward id 0
        fit = chi_square_uniformity(samples, population)
        assert fit.rejects_uniformity(alpha=0.001)

    def test_weighted_fit_accepts_weight_proportional_samples(self):
        rng = np.random.default_rng(1)
        population = [10, 20, 30]
        weights = [1.0, 2.0, 7.0]
        draws = rng.choice(population, size=8000, p=np.array(weights) / 10.0).tolist()
        fit = chi_square_weighted(draws, population, weights)
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_weighted_fit_rejects_uniform_samples_under_skewed_weights(self):
        rng = np.random.default_rng(2)
        population = [0, 1]
        weights = [1.0, 99.0]
        draws = rng.integers(0, 2, 5000).tolist()  # uniform, but weights are skewed
        fit = chi_square_weighted(draws, population, weights)
        assert fit.rejects_uniformity(alpha=0.001)

    def test_empty_sample_raises(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([], [1, 2])

    def test_samples_outside_support_raise(self):
        with pytest.raises(ValueError):
            chi_square_uniformity([5], [1, 2])

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            chi_square_goodness_of_fit([0], {0: 0.3, 1: 0.3})

    def test_mismatched_weights_length(self):
        with pytest.raises(ValueError):
            chi_square_weighted([0], [0, 1], [1.0])

    def test_zero_total_weight_raises(self):
        with pytest.raises(ValueError):
            chi_square_weighted([0], [0, 1], [0.0, 0.0])


class TestTotalVariation:
    def test_zero_for_exact_match(self):
        samples = [0, 1] * 500
        assert total_variation_distance(samples, {0: 0.5, 1: 0.5}) < 0.05

    def test_one_half_for_disjoint_support(self):
        samples = [0] * 100
        assert total_variation_distance(samples, {1: 1.0}) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            total_variation_distance([], {0: 1.0})


class TestEstimators:
    def test_estimate_mean_recovers_population_mean(self):
        rng = np.random.default_rng(3)
        values = rng.normal(10.0, 2.0, 2000)
        est = estimate_mean(values)
        assert est.lower <= 10.0 <= est.upper
        assert est.sample_size == 2000

    def test_estimate_mean_single_value(self):
        est = estimate_mean([4.2])
        assert est.value == 4.2
        assert est.stderr == 0.0

    def test_estimate_mean_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_mean([])

    def test_estimate_proportion_bounds(self):
        est = estimate_proportion([True] * 70 + [False] * 30)
        assert est.value == pytest.approx(0.7)
        assert 0.0 <= est.lower <= est.upper <= 1.0

    def test_estimate_sum_scales_by_population(self):
        est = estimate_sum([2.0, 2.0, 2.0], population_size=100)
        assert est.value == pytest.approx(200.0)

    def test_estimate_sum_negative_population_raises(self):
        with pytest.raises(ValueError):
            estimate_sum([1.0], population_size=-1)

    def test_invalid_confidence_raises(self):
        with pytest.raises(ValueError):
            estimate_mean([1.0, 2.0], confidence=1.5)

    def test_estimate_result_statistic_mean_and_total(self):
        samples = [Interval(0, 2), Interval(0, 4), Interval(0, 6)]
        mean_est = estimate_result_statistic(samples, lambda x: x.length)
        assert mean_est.value == pytest.approx(4.0)
        total_est = estimate_result_statistic(samples, lambda x: x.length, population_size=30)
        assert total_est.value == pytest.approx(120.0)

    def test_estimate_str_and_type(self):
        est = estimate_mean([1.0, 2.0, 3.0])
        assert isinstance(est, Estimate)
        assert "CI" in str(est)

    def test_wider_confidence_gives_wider_interval(self):
        values = list(np.random.default_rng(4).normal(0, 1, 500))
        narrow = estimate_mean(values, confidence=0.8)
        wide = estimate_mean(values, confidence=0.99)
        assert (wide.upper - wide.lower) > (narrow.upper - narrow.lower)
