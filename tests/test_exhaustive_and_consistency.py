"""Oracle tests and cross-structure integration consistency checks."""

from __future__ import annotations

import pytest

from repro import AIT, AITV, AWIT, IntervalDataset
from repro.baselines import (
    HINT,
    KDS,
    ExhaustiveScan,
    IntervalTree,
    KDTreeIndex,
    PeriodIndex,
    TimelineIndex,
)
from repro.stats import chi_square_weighted


class TestExhaustiveScan:
    def test_report_count_total_weight(self, weighted_dataset, make_queries):
        oracle = ExhaustiveScan(weighted_dataset, weighted=True)
        assert oracle.is_weighted
        for query in make_queries(weighted_dataset, count=10):
            ids = weighted_dataset.overlap_indices(*query)
            assert set(oracle.report(query).tolist()) == set(ids.tolist())
            assert oracle.count(query) == ids.shape[0]
            assert oracle.total_weight(query) == pytest.approx(float(weighted_dataset.weights[ids].sum()))

    def test_weighted_sampling_distribution(self, weighted_dataset, make_queries, ground_truth):
        oracle = ExhaustiveScan(weighted_dataset, weighted=True)
        query = make_queries(weighted_dataset, count=1, extent=0.15)[0]
        truth = sorted(ground_truth(weighted_dataset, query))
        weights = weighted_dataset.weights[truth]
        samples = oracle.sample(query, 50 * len(truth), random_state=0)
        fit = chi_square_weighted(samples.tolist(), truth, weights.tolist())
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_unweighted_sampling_membership(self, random_dataset, make_queries, ground_truth):
        oracle = ExhaustiveScan(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        samples = oracle.sample(query, 50, random_state=1)
        assert set(samples.tolist()) <= ground_truth(random_dataset, query)

    def test_empty_result(self, random_dataset):
        oracle = ExhaustiveScan(random_dataset)
        _, hi = random_dataset.domain()
        assert oracle.sample((hi + 1.0, hi + 2.0), 5).shape == (0,)


class TestCrossStructureConsistency:
    """Every index must answer exactly like the brute-force oracle."""

    @pytest.mark.parametrize("kind", ["uniform", "long", "points", "clustered", "duplicates"])
    def test_all_structures_agree_on_reporting(self, make_random_dataset, make_queries, kind):
        dataset = make_random_dataset(n=400, seed=hash(kind) % 1000, kind=kind)
        structures = {
            "ait": AIT(dataset),
            "ait_v": AITV(dataset),
            "awit": AWIT(dataset),
            "interval_tree": IntervalTree(dataset),
            "hint": HINT(dataset),
            "kds": KDS(dataset),
            "kdtree": KDTreeIndex(dataset),
            "timeline": TimelineIndex(dataset),
            "period": PeriodIndex(dataset),
        }
        for query in make_queries(dataset, count=10, extent=0.1):
            expected = set(dataset.overlap_indices(*query).tolist())
            for name, structure in structures.items():
                assert set(structure.report(query).tolist()) == expected, name

    def test_all_structures_agree_on_counting(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=600, seed=77)
        structures = [AIT(dataset), AITV(dataset), IntervalTree(dataset), HINT(dataset), KDTreeIndex(dataset)]
        for query in make_queries(dataset, count=15, extent=0.25):
            expected = dataset.overlap_count(*query)
            for structure in structures:
                assert structure.count(query) == expected

    def test_all_samplers_return_subsets_of_the_same_truth(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=500, seed=88, weighted=True)
        query = make_queries(dataset, count=1, extent=0.15)[0]
        truth = set(dataset.overlap_indices(*query).tolist())
        samplers = [
            AIT(dataset),
            AITV(dataset),
            AWIT(dataset),
            IntervalTree(dataset, weighted=True),
            HINT(dataset, weighted=True),
            KDS(dataset, weighted=True),
            ExhaustiveScan(dataset, weighted=True),
        ]
        for sampler in samplers:
            samples = sampler.sample(query, 200, random_state=5)
            assert set(samples.tolist()) <= truth

    def test_structures_survive_extreme_duplicate_dataset(self):
        dataset = IntervalDataset([10.0] * 100, [20.0] * 100)
        for structure in (AIT(dataset), AITV(dataset), IntervalTree(dataset), HINT(dataset), KDS(dataset)):
            assert structure.count((15.0, 16.0)) == 100
            assert structure.count((30.0, 40.0)) == 0
