"""Concurrency + durability stress for the process-parallel execution tier.

Two properties of ISSUE 7's acceptance bar:

* **Batch-boundary consistency under concurrency** — a ``RequestGateway``
  serving an engine backed by a ``ProcessExecutor`` under N concurrent
  writer and reader threads never shows a torn state: every read reflects
  a batch-boundary snapshot, so with an insert-only workload each reader's
  successive counts are monotone non-decreasing and bounded by the total
  write volume, and after all writers are joined the final count is exact.

* **Acknowledged => recovered across worker death** — ``checkpoint()``
  through the running gateway, SIGKILL of a shard worker, more
  acknowledged writes, close, then ``ShardedEngine.open`` must recover
  every acknowledged write (snapshot epoch + WAL replay), bit-identical
  to a serial engine that applied the same op stream.

All synchronisation is structural (barriers, blocking futures, joins) —
no sleeps-as-sync, so the tests are deterministic and run at full speed.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import ShardedEngine
from repro.service import ProcessExecutor, RequestGateway

DOMAIN = (-1.0, 2000.0)  # strictly wider than any fixture dataset


@pytest.fixture
def dataset(make_random_dataset):
    return make_random_dataset(n=500, seed=41)


def _run_threads(workers):
    """Start all workers behind a barrier, join them, re-raise any failure."""
    barrier = threading.Barrier(len(workers))
    errors = []

    def wrap(fn):
        def run():
            barrier.wait()
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]


class TestConcurrentGateway:
    N_WRITERS = 3
    N_READERS = 3
    WRITES_EACH = 10
    READS_EACH = 12

    def test_insert_only_counts_are_monotone_and_exact(self, dataset):
        base = len(dataset)
        total = self.N_WRITERS * self.WRITES_EACH
        executor = ProcessExecutor(max_workers=2)
        engine = ShardedEngine(dataset, num_shards=4, executor=executor)
        acked_ids: list[list[int]] = [[] for _ in range(self.N_WRITERS)]
        seen_counts: list[list[int]] = [[] for _ in range(self.N_READERS)]
        try:
            with RequestGateway(engine, max_wait_ms=1.0) as gateway:

                def writer(slot: int):
                    rng = np.random.default_rng(1000 + slot)
                    for _ in range(self.WRITES_EACH):
                        left = float(rng.uniform(0.0, 900.0))
                        gid = gateway.insert((left, left + 5.0), timeout=60)
                        acked_ids[slot].append(gid)

                def reader(slot: int):
                    for _ in range(self.READS_EACH):
                        seen_counts[slot].append(gateway.count(DOMAIN, timeout=60))

                _run_threads(
                    [lambda s=i: writer(s) for i in range(self.N_WRITERS)]
                    + [lambda s=i: reader(s) for i in range(self.N_READERS)]
                )
                final = gateway.count(DOMAIN, timeout=60)
                stats = gateway.stats()
        finally:
            engine.close()
            executor.shutdown()

        # every acknowledged insert got a unique global id
        flat = [gid for ids in acked_ids for gid in ids]
        assert len(set(flat)) == total
        # batch-boundary snapshots: insert-only => monotone counts per reader
        for counts in seen_counts:
            assert counts == sorted(counts)
            assert all(base <= c <= base + total for c in counts)
        # after joins every acknowledged write is visible
        assert final == base + total
        assert stats["engine"]["executor"] == "process"
        assert stats["errors"] == {}

    def test_mixed_writes_settle_to_exact_count(self, dataset):
        """Writers insert then delete their own acked ids; the ledger balances."""
        base = len(dataset)
        executor = ProcessExecutor(max_workers=2)
        engine = ShardedEngine(dataset, num_shards=4, executor=executor)
        kept: list[int] = []
        lock = threading.Lock()
        try:
            with RequestGateway(engine, max_wait_ms=1.0) as gateway:

                def churner(slot: int):
                    rng = np.random.default_rng(2000 + slot)
                    for round_index in range(6):
                        left = float(rng.uniform(0.0, 900.0))
                        gid = gateway.insert((left, left + 2.0), timeout=60)
                        if round_index % 2 == 0:
                            # deleting an acknowledged insert must succeed
                            assert gateway.delete(gid, timeout=60) is True
                        else:
                            with lock:
                                kept.append(gid)

                def reader(slot: int):
                    for _ in range(8):
                        count = gateway.count(DOMAIN, timeout=60)
                        assert base - 1 <= count <= base + 4 * 6
                        sampled = gateway.sample(DOMAIN, 8, timeout=60)
                        assert sampled.shape == (8,)

                _run_threads(
                    [lambda s=i: churner(s) for i in range(4)]
                    + [lambda s=i: reader(s) for i in range(2)]
                )
                final = gateway.count(DOMAIN, timeout=60)
                surviving = gateway.report(DOMAIN, timeout=60)
        finally:
            engine.close()
            executor.shutdown()

        assert final == base + len(kept)
        assert set(kept) <= set(int(g) for g in surviving)


class TestQueryScatterGateway:
    """The concurrency invariants hold under the query-parallel scatter too.

    ``block_size=7`` forces multi-tile batches whose tiles interleave across
    both workers while writers bump snapshot versions concurrently — the
    republish-to-all-workers protocol must keep every tile on a
    batch-boundary snapshot.
    """

    def test_churn_under_query_scatter_settles_exact(self, dataset):
        base = len(dataset)
        executor = ProcessExecutor(max_workers=2, scatter="query", block_size=7)
        engine = ShardedEngine(dataset, num_shards=4, executor=executor)
        kept: list[int] = []
        lock = threading.Lock()
        try:
            with RequestGateway(engine, max_wait_ms=1.0) as gateway:

                def churner(slot: int):
                    rng = np.random.default_rng(3000 + slot)
                    for round_index in range(6):
                        left = float(rng.uniform(0.0, 900.0))
                        gid = gateway.insert((left, left + 2.0), timeout=60)
                        if round_index % 2 == 0:
                            assert gateway.delete(gid, timeout=60) is True
                        else:
                            with lock:
                                kept.append(gid)

                def reader(slot: int):
                    for _ in range(8):
                        count = gateway.count(DOMAIN, timeout=60)
                        assert base - 1 <= count <= base + 4 * 6
                        sampled = gateway.sample(DOMAIN, 8, timeout=60)
                        assert sampled.shape == (8,)

                _run_threads(
                    [lambda s=i: churner(s) for i in range(4)]
                    + [lambda s=i: reader(s) for i in range(2)]
                )
                final = gateway.count(DOMAIN, timeout=60)
                surviving = gateway.report(DOMAIN, timeout=60)
                stats = gateway.stats()
        finally:
            engine.close()
            executor.shutdown()

        assert final == base + len(kept)
        assert set(kept) <= set(int(g) for g in surviving)
        assert stats["engine"]["executor"] == "process"
        assert stats["engine"]["scatter"] == "query"
        assert stats["errors"] == {}


class TestCheckpointKillRecover:
    def test_no_acknowledged_write_lost(self, tmp_path, dataset):
        directory = str(tmp_path / "stress")
        # seed the directory with a checkpointed base engine
        with ShardedEngine(dataset, num_shards=4) as seed_engine:
            seed_engine.save_snapshot(directory)

        rng = np.random.default_rng(99)
        batch_a = [(float(l), float(l) + 3.0) for l in rng.uniform(0.0, 900.0, 20)]
        batch_b = [(float(l), float(l) + 3.0) for l in rng.uniform(0.0, 900.0, 20)]

        executor = ProcessExecutor(max_workers=2)
        engine = ShardedEngine.open(directory, executor=executor)
        acked: list[int] = []
        try:
            with RequestGateway(engine, max_wait_ms=1.0) as gateway:
                for interval in batch_a:
                    acked.append(gateway.insert(interval, timeout=60))
                count_after_a = gateway.count(DOMAIN, timeout=60)
                assert count_after_a == len(dataset) + len(batch_a)
                # checkpoint through the gateway (dispatcher-serialised) ...
                epoch = gateway.checkpoint(timeout=120)
                assert epoch == 2
                # ... then murder a shard worker mid-service ...
                executor.kill_worker(0)
                # ... and keep writing: these land in the post-epoch WAL
                for interval in batch_b:
                    acked.append(gateway.insert(interval, timeout=60))
                assert gateway.count(DOMAIN, timeout=60) == len(dataset) + len(acked)
        finally:
            engine.close()
            executor.shutdown()

        # recover on a plain serial engine and verify against a serial oracle
        with ShardedEngine.open(directory) as recovered:
            oracle = ShardedEngine(dataset, num_shards=4)
            oracle.insert_many(
                np.array([l for l, _ in batch_a + batch_b]),
                np.array([r for _, r in batch_a + batch_b]),
            )
            assert recovered.size == oracle.size
            queries = [(0.0, 500.0), (250.0, 750.0), DOMAIN]
            assert np.array_equal(
                recovered.count_many(queries), oracle.count_many(queries)
            )
            surviving = set(int(g) for g in recovered.report_many([DOMAIN])[0])
            assert set(acked) <= surviving
            oracle.close()


class TestDrainUnderFire:
    """ISSUE 10's drain contract: close() under concurrent writers + a
    SIGKILLed worker loses no acked write and rejects post-close submits."""

    N_WRITERS = 3
    MIN_ACKS_BEFORE_DRAIN = 5

    def test_close_under_fire_loses_no_acked_write(self, tmp_path, dataset):
        from repro.core.errors import GatewayClosedError

        directory = str(tmp_path / "drainfire")
        with ShardedEngine(dataset, num_shards=4) as seed_engine:
            seed_engine.save_snapshot(directory)

        executor = ProcessExecutor(max_workers=2)
        engine = ShardedEngine.open(directory, executor=executor)
        gateway = RequestGateway(engine, max_wait_ms=1.0)
        acked: list[list[int]] = [[] for _ in range(self.N_WRITERS)]
        closed_observed: list[str] = []
        lock = threading.Lock()

        def writer(slot: int):
            rng = np.random.default_rng(4000 + slot)
            for _ in range(100_000):
                left = float(rng.uniform(0.0, 900.0))
                try:
                    gid = gateway.insert((left, left + 3.0), timeout=60)
                except GatewayClosedError:
                    with lock:
                        closed_observed.append(f"writer-{slot}")
                    return
                acked[slot].append(gid)
            raise AssertionError("gateway never closed under fire")

        def reader():
            base = len(dataset)
            last = base
            for _ in range(100_000):
                try:
                    count = gateway.count(DOMAIN, timeout=60)
                except GatewayClosedError:
                    with lock:
                        closed_observed.append("reader")
                    return
                # insert-only workload: batch-boundary snapshots stay monotone
                # even while a worker is being SIGKILLed and respawned
                assert count >= last
                last = count
            raise AssertionError("gateway never closed under fire")

        def controller():
            # wait for real fire, murder a shard worker mid-service, keep the
            # fire burning a moment, then drain
            while not all(len(ids) >= self.MIN_ACKS_BEFORE_DRAIN for ids in acked):
                time.sleep(0.002)
            executor.kill_worker(0)
            while not all(len(ids) >= 2 * self.MIN_ACKS_BEFORE_DRAIN for ids in acked):
                time.sleep(0.002)
            gateway.close()

        try:
            _run_threads(
                [lambda s=i: writer(s) for i in range(self.N_WRITERS)]
                + [reader, controller]
            )
            # every client that outlived the drain saw the pinned close error
            assert sorted(closed_observed) == sorted(
                [f"writer-{i}" for i in range(self.N_WRITERS)] + ["reader"]
            )
            with pytest.raises(GatewayClosedError, match=r"gateway is closed"):
                gateway.submit("insert", (1.0, 2.0))
        finally:
            engine.close()
            executor.shutdown()

        # recover on a serial engine: acknowledged => durable, exactly once
        flat = [gid for ids in acked for gid in ids]
        assert len(flat) == len(set(flat))
        with ShardedEngine.open(directory) as recovered:
            assert recovered.size == len(dataset) + len(flat)
            surviving = set(int(g) for g in recovered.report_many([DOMAIN])[0])
            assert set(flat) <= surviving
