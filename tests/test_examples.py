"""Every example script must run end to end (they are part of the public deliverable)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_expected_scripts():
    names = {path.name for path in EXAMPLE_SCRIPTS}
    assert "quickstart.py" in names
    assert len(names) >= 3, "the deliverable requires at least three runnable examples"


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS, ids=lambda p: p.name)
def test_example_runs_successfully(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print a human-readable report"
