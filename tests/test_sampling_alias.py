"""Tests for Walker's alias method."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import AliasTable, InvalidWeightError
from repro.sampling import alias_sample, build_alias, resolve_rng


class TestConstruction:
    def test_single_weight(self):
        table = AliasTable([5.0])
        assert len(table) == 1
        assert table.total_weight == 5.0
        assert table.sample(resolve_rng(0)) == 0

    def test_empty_weights_raise(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([])

    def test_negative_weight_raises(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([1.0, -1.0])

    def test_all_zero_weights_raise(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([0.0, 0.0])

    def test_nan_weight_raises(self):
        with pytest.raises(InvalidWeightError):
            AliasTable([1.0, float("nan")])

    def test_build_alias_helper(self):
        assert isinstance(build_alias([1.0, 2.0]), AliasTable)


class TestExactProbabilities:
    def test_probabilities_match_weights(self):
        weights = np.array([1.0, 2.0, 3.0, 4.0])
        table = AliasTable(weights)
        np.testing.assert_allclose(table.probabilities(), weights / weights.sum(), atol=1e-12)

    def test_zero_weight_entry_has_zero_probability(self):
        table = AliasTable([0.0, 1.0, 3.0])
        probs = table.probabilities()
        assert probs[0] == pytest.approx(0.0, abs=1e-12)
        assert probs[2] == pytest.approx(0.75, abs=1e-12)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60).filter(
            lambda w: sum(w) > 0
        )
    )
    def test_probabilities_match_weights_property(self, weights):
        table = AliasTable(weights)
        expected = np.asarray(weights) / np.sum(weights)
        np.testing.assert_allclose(table.probabilities(), expected, atol=1e-9)


class TestSampling:
    def test_sample_many_shape_and_range(self):
        table = AliasTable([1.0, 2.0, 3.0])
        draws = table.sample_many(1000, resolve_rng(1))
        assert draws.shape == (1000,)
        assert set(np.unique(draws)) <= {0, 1, 2}

    def test_sample_many_zero_count(self):
        table = AliasTable([1.0, 2.0])
        assert table.sample_many(0, resolve_rng(0)).shape == (0,)

    def test_sample_many_negative_raises(self):
        with pytest.raises(ValueError):
            AliasTable([1.0]).sample_many(-1, resolve_rng(0))

    def test_zero_weight_items_never_sampled(self):
        table = AliasTable([0.0, 1.0, 0.0, 2.0])
        draws = table.sample_many(2000, resolve_rng(2))
        assert set(np.unique(draws)) <= {1, 3}

    def test_empirical_distribution_tracks_weights(self):
        weights = np.array([1.0, 4.0, 5.0])
        table = AliasTable(weights)
        draws = table.sample_many(60_000, resolve_rng(3))
        freq = np.bincount(draws, minlength=3) / draws.shape[0]
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.02)

    def test_alias_sample_helper_is_deterministic_per_seed(self):
        a = alias_sample([1.0, 2.0, 3.0], 50, random_state=9)
        b = alias_sample([1.0, 2.0, 3.0], 50, random_state=9)
        np.testing.assert_array_equal(a, b)

    def test_uniform_weights_behave_uniformly(self):
        table = AliasTable(np.ones(10))
        draws = table.sample_many(50_000, resolve_rng(4))
        freq = np.bincount(draws, minlength=10) / draws.shape[0]
        np.testing.assert_allclose(freq, np.full(10, 0.1), atol=0.01)
