"""Tests for the segment tree and the 1-D sorted-array IRS substrates."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IntervalDataset
from repro.baselines import EndpointIRS, SegmentTree, SortedArrayIRS
from repro.core.errors import EmptyDatasetError


class TestSegmentTree:
    def test_stab_matches_oracle(self, random_dataset):
        tree = SegmentTree(random_dataset)
        rng = np.random.default_rng(1)
        lo, hi = random_dataset.domain()
        for point in rng.uniform(lo, hi, 25):
            expected = set(random_dataset.overlap_indices(point, point).tolist())
            assert set(tree.stab(float(point)).tolist()) == expected

    def test_stab_at_exact_endpoints(self):
        dataset = IntervalDataset([0.0, 5.0], [5.0, 10.0])
        tree = SegmentTree(dataset)
        assert set(tree.stab(5.0).tolist()) == {0, 1}
        assert set(tree.stab(0.0).tolist()) == {0}
        assert set(tree.stab(10.0).tolist()) == {1}

    def test_stab_outside_domain_is_empty(self, random_dataset):
        tree = SegmentTree(random_dataset)
        lo, hi = random_dataset.domain()
        assert tree.stab(lo - 100.0).shape == (0,)
        assert tree.stab(hi + 100.0).shape == (0,)

    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        tree = SegmentTree(random_dataset)
        for query in make_queries(random_dataset, count=10):
            assert set(tree.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_memory_bytes_positive(self, random_dataset):
        assert SegmentTree(random_dataset).memory_bytes() > 0

    def test_point_interval_dataset(self, make_random_dataset):
        dataset = make_random_dataset(n=100, seed=2, kind="points")
        tree = SegmentTree(dataset)
        point = float(dataset.lefts[0])
        assert 0 in set(tree.stab(point).tolist())


class TestSortedArrayIRS:
    def test_count_and_report(self):
        irs = SortedArrayIRS([5.0, 1.0, 3.0, 9.0])
        assert irs.count((2.0, 6.0)) == 2
        assert set(irs.report((2.0, 6.0)).tolist()) == {0, 2}

    def test_empty_population_raises(self):
        with pytest.raises(EmptyDatasetError):
            SortedArrayIRS([])

    def test_sample_membership_and_size(self):
        points = np.linspace(0, 100, 200)
        irs = SortedArrayIRS(points)
        samples = irs.sample((10.0, 20.0), 100, random_state=0)
        assert samples.shape == (100,)
        assert all(10.0 <= points[i] <= 20.0 for i in samples)

    def test_sample_empty_range(self):
        irs = SortedArrayIRS([1.0, 2.0])
        assert irs.sample((5.0, 6.0), 10).shape == (0,)
        from repro import EmptyResultError

        with pytest.raises(EmptyResultError):
            irs.sample((5.0, 6.0), 10, on_empty="raise")

    def test_len(self):
        assert len(SortedArrayIRS([1.0, 2.0, 3.0])) == 3

    def test_sampling_is_roughly_uniform(self):
        points = np.arange(50, dtype=float)
        irs = SortedArrayIRS(points)
        samples = irs.sample((10.0, 19.0), 20_000, random_state=1)
        counts = np.bincount(samples, minlength=50)[10:20]
        freq = counts / counts.sum()
        np.testing.assert_allclose(freq, np.full(10, 0.1), atol=0.02)


class TestEndpointIRSIsIncorrect:
    """Executable version of the paper's Section I argument."""

    def test_misses_straddling_intervals(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=500, seed=3, kind="long")
        naive = EndpointIRS(dataset)
        missed_any = False
        for query in make_queries(dataset, count=10):
            missed = naive.missed_intervals(query)
            truth = dataset.overlap_count(*query)
            reported = naive.report(query).shape[0]
            assert reported + missed.shape[0] == truth
            if missed.shape[0] > 0:
                missed_any = True
        assert missed_any, "the naive reduction should miss straddling intervals"

    def test_never_reports_false_positives(self, random_dataset, make_queries, ground_truth):
        naive = EndpointIRS(random_dataset)
        for query in make_queries(random_dataset, count=10):
            assert set(naive.report(query).tolist()) <= ground_truth(random_dataset, query)

    def test_samples_come_from_reported_subset(self, random_dataset, make_queries):
        naive = EndpointIRS(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        reported = set(naive.report(query).tolist())
        if reported:
            samples = naive.sample(query, 100, random_state=0)
            assert set(samples.tolist()) <= reported
