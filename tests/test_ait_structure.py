"""Structural tests for the AIT: invariants, node records, height and memory."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import AIT, EmptyDatasetError, IntervalDataset, ListKind


def build_dataset_from_pairs(pairs):
    lefts = [min(a, b) for a, b in pairs]
    rights = [max(a, b) for a, b in pairs]
    return IntervalDataset(lefts, rights)


class TestConstruction:
    def test_empty_dataset_rejected(self):
        with pytest.raises(EmptyDatasetError):
            AIT(IntervalDataset([], []))

    def test_single_interval_tree(self):
        tree = AIT(IntervalDataset([1.0], [2.0]))
        assert tree.size == 1
        assert tree.height == 1
        assert tree.node_count() == 1
        assert tree.count((0.0, 5.0)) == 1

    def test_identical_intervals_collapse_to_one_node(self):
        tree = AIT(IntervalDataset([1.0] * 50, [2.0] * 50))
        assert tree.node_count() == 1
        assert tree.root.stab_count == 50

    def test_height_is_logarithmic(self, random_dataset):
        tree = AIT(random_dataset)
        n = len(random_dataset)
        assert tree.height <= 2 * math.ceil(math.log2(n)) + 2

    def test_invariants_hold_after_build(self, random_dataset):
        AIT(random_dataset).check_invariants()

    def test_invariants_hold_for_degenerate_point_intervals(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=300, seed=5, kind="points"))
        tree.check_invariants()

    def test_invariants_hold_for_duplicates(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=400, seed=6, kind="duplicates"))
        tree.check_invariants()

    def test_every_interval_stored_exactly_once_in_stab_lists(self, random_dataset):
        tree = AIT(random_dataset)
        stored = []
        for node in tree.iter_nodes():
            stored.extend(node.stab_ids_by_left.tolist())
        assert sorted(stored) == list(range(len(random_dataset)))

    def test_root_subtree_list_contains_everything(self, random_dataset):
        tree = AIT(random_dataset)
        assert tree.root.subtree_count == len(random_dataset)

    def test_memory_grows_with_dataset(self, make_random_dataset):
        small = AIT(make_random_dataset(n=200, seed=1))
        large = AIT(make_random_dataset(n=2000, seed=1))
        assert large.memory_bytes() > small.memory_bytes()

    def test_interval_accessor(self, random_dataset):
        tree = AIT(random_dataset)
        assert tree.interval(0) == random_dataset[0]
        with pytest.raises(KeyError):
            tree.interval(len(random_dataset) + 5)

    def test_rebuild_count_starts_at_one(self, random_dataset):
        assert AIT(random_dataset).rebuild_count == 1


class TestNodeRecords:
    def test_records_are_disjoint_and_complete(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=30, extent=0.1):
            records = tree.collect_records(query)
            ids = [rec.interval_ids().tolist() for rec in records]
            flat = [i for chunk in ids for i in chunk]
            assert len(flat) == len(set(flat)), "records must not overlap"
            assert set(flat) == ground_truth(random_dataset, query)

    def test_at_most_one_case3_node(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=30, extent=0.2):
            records = tree.collect_records(query)
            subtree_records = [
                rec for rec in records
                if rec.kind in (ListKind.SUBTREE_BY_LEFT, ListKind.SUBTREE_BY_RIGHT)
            ]
            # Case 3 contributes at most two subtree records (left and right child).
            assert len(subtree_records) <= 2

    def test_record_count_bounded_by_height_plus_constant(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=30, extent=0.15):
            assert len(tree.collect_records(query)) <= tree.height + 2

    def test_record_weights_equal_counts_for_unweighted_tree(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=10):
            for rec in tree.collect_records(query):
                assert rec.weight == rec.count

    def test_empty_query_region_returns_no_records(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        assert tree.collect_records((hi + 100.0, hi + 200.0)) == []

    def test_record_validation_rejects_bad_ranges(self, random_dataset):
        from repro import NodeRecord

        tree = AIT(random_dataset)
        node = tree.root
        with pytest.raises(ValueError):
            NodeRecord(node, ListKind.STAB_BY_LEFT, 3, 1, 1.0)
        with pytest.raises(ValueError):
            NodeRecord(node, ListKind.STAB_BY_LEFT, -1, 1, 1.0)


class TestHypothesisInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            ),
            min_size=1,
            max_size=120,
        )
    )
    def test_invariants_on_arbitrary_datasets(self, pairs):
        tree = AIT(build_dataset_from_pairs(pairs))
        tree.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        ),
        query=st.tuples(
            st.floats(min_value=-50.0, max_value=1050.0, allow_nan=False),
            st.floats(min_value=-50.0, max_value=1050.0, allow_nan=False),
        ),
    )
    def test_records_match_bruteforce_on_arbitrary_inputs(self, pairs, query):
        dataset = build_dataset_from_pairs(pairs)
        tree = AIT(dataset)
        q = (min(query), max(query))
        truth = set(dataset.overlap_indices(q[0], q[1]).tolist())
        records = tree.collect_records(q)
        found = set()
        for rec in records:
            found.update(rec.interval_ids().tolist())
        assert found == truth
