"""Write-path tests: bulk APIs, columnar growth/recycling, incremental snapshots.

Covers the update-path edge cases the scalar tests miss — delete-from-pool
then flush, double deletes, recycled-slot deletes, interleaved bulk vs
scalar-loop oracles — plus the equivalence of the incremental FlatAIT
refresh against a full ``from_tree`` rebuild after randomised write
sequences (AIT and AWIT), the pool-epoch staleness counter, and the
delete-of-unindexed-id regression.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, AWIT, FlatAIT, IntervalDataset
from repro.core.errors import InvalidIntervalError, InvalidWeightError


def assert_flat_equal(actual: FlatAIT, expected: FlatAIT) -> None:
    """Two snapshots must be bit-identical, array by array."""
    assert actual.node_count == expected.node_count
    assert np.array_equal(actual._centers, expected._centers)
    assert np.array_equal(actual._left_child, expected._left_child)
    assert np.array_equal(actual._right_child, expected._right_child)
    assert np.array_equal(actual._stab_off, expected._stab_off)
    assert np.array_equal(actual._stab_len, expected._stab_len)
    assert np.array_equal(actual._sub_off, expected._sub_off)
    assert np.array_equal(actual._sub_len, expected._sub_len)
    assert np.array_equal(actual._stab_lefts, expected._stab_lefts)
    assert np.array_equal(actual._stab_rights, expected._stab_rights)
    assert np.array_equal(actual._sub_lefts, expected._sub_lefts)
    assert np.array_equal(actual._sub_rights, expected._sub_rights)
    assert np.array_equal(actual._all_ids, expected._all_ids)
    if expected._all_weight_prefix is None:
        assert actual._all_weight_prefix is None
    else:
        assert np.allclose(actual._all_weight_prefix, expected._all_weight_prefix)


def random_batch(rng, count, domain=1000.0):
    lefts = rng.uniform(0.0, domain, count)
    rights = lefts + rng.exponential(domain / 50.0, count)
    return lefts, rights


# ---------------------------------------------------------------------- #
# bulk insertion
# ---------------------------------------------------------------------- #
class TestInsertMany:
    def test_matches_scalar_loop_oracle(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=300, seed=1)
        bulk = AIT(dataset)
        scalar = AIT(dataset)
        rng = np.random.default_rng(2)
        lefts, rights = random_batch(rng, 120)
        bulk_ids = bulk.insert_many(lefts, rights)
        scalar_ids = [scalar.insert((l, r)) for l, r in zip(lefts, rights)]
        scalar.flush_pool()
        assert bulk_ids.tolist() == scalar_ids
        for query in make_queries(dataset, count=15):
            assert bulk.count(query) == scalar.count(query)
            assert set(bulk.report(query).tolist()) == set(scalar.report(query).tolist())
        bulk.check_invariants()

    def test_bulk_load_into_empty_tree(self, make_queries):
        seed = IntervalDataset.from_pairs([(0.0, 1.0)])
        tree = AIT(seed)
        tree.delete(0)
        rng = np.random.default_rng(3)
        lefts, rights = random_batch(rng, 500)
        ids = tree.insert_many(lefts, rights)
        assert tree.size == 500
        assert tree.pending_pool_size == 0
        loaded = IntervalDataset(lefts, rights)
        reference = AIT(loaded)
        for query in make_queries(loaded, count=10):
            assert tree.count(query) == reference.count(query)
        tree.check_invariants()
        # id 0 was vacated before the bulk load and must have been recycled.
        assert 0 in set(ids.tolist())

    def test_empty_batch_is_noop(self, random_dataset):
        tree = AIT(random_dataset)
        version = tree.structure_version
        ids = tree.insert_many([], [])
        assert ids.shape == (0,)
        assert tree.structure_version == version

    def test_validation_mutates_nothing(self, random_dataset):
        tree = AIT(random_dataset)
        size = tree.size
        version = tree.structure_version
        with pytest.raises(InvalidIntervalError):
            tree.insert_many([0.0, 5.0], [1.0, 4.0])  # second interval inverted
        with pytest.raises(InvalidIntervalError):
            tree.insert_many([0.0, np.inf], [1.0, 2.0])
        with pytest.raises(InvalidIntervalError):
            tree.insert_many([0.0], [1.0, 2.0])
        with pytest.raises(InvalidWeightError):
            tree.insert_many([0.0], [1.0], weights=[-2.0])
        assert tree.size == size
        assert tree.structure_version == version

    def test_weighted_bulk_insert(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=200, seed=5, weighted=True)
        tree = AWIT(dataset)
        rng = np.random.default_rng(6)
        lefts, rights = random_batch(rng, 80)
        weights = rng.integers(1, 50, 80).astype(np.float64)
        tree.insert_many(lefts, rights, weights=weights)
        combined = IntervalDataset(
            np.concatenate((dataset.lefts, lefts)),
            np.concatenate((dataset.rights, rights)),
            np.concatenate((dataset.weights, weights)),
        )
        reference = AWIT(combined)
        for query in make_queries(dataset, count=10):
            assert tree.count(query) == reference.count(query)
            assert tree.total_weight(query) == pytest.approx(reference.total_weight(query))
        tree.check_invariants()


# ---------------------------------------------------------------------- #
# bulk deletion and update-path edge cases
# ---------------------------------------------------------------------- #
class TestDeleteMany:
    def test_matches_scalar_loop_oracle(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=400, seed=7)
        bulk = AIT(dataset)
        scalar = AIT(dataset)
        rng = np.random.default_rng(8)
        victims = rng.choice(450, size=200, replace=True).tolist()  # dupes + unknown ids
        bulk_flags = bulk.delete_many(victims)
        scalar_flags = [scalar.delete(v) for v in victims]
        assert bulk_flags.tolist() == scalar_flags
        assert bulk.size == scalar.size
        for query in make_queries(dataset, count=15):
            assert bulk.count(query) == scalar.count(query)
            assert set(bulk.report(query).tolist()) == set(scalar.report(query).tolist())
        bulk.check_invariants()

    def test_single_structure_version_bump(self, random_dataset):
        tree = AIT(random_dataset)
        version = tree.structure_version
        assert tree.delete_many([0, 1, 2, 3]).all()
        assert tree.structure_version == version + 1

    def test_delete_from_pool_then_flush(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=100, seed=9), batch_pool_size=50)
        pooled = [tree.insert((float(i), float(i) + 0.5)) for i in range(10)]
        doomed = pooled[3]
        assert tree.delete(doomed)
        assert tree.flush_pool() == 9
        assert doomed not in set(tree.report((0.0, 20.0)).tolist())
        assert tree.size == 100 + 9
        tree.check_invariants()

    def test_double_delete(self, random_dataset):
        tree = AIT(random_dataset)
        assert tree.delete(5)
        assert not tree.delete(5)
        assert tree.delete_many([6, 6]).tolist() == [True, False]
        assert not tree.delete_many([5])[0]

    def test_delete_of_vacated_and_recycled_id(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=50, seed=10))
        assert tree.delete(7)
        assert tree.free_slot_count == 1
        new_id = tree.insert((2000.0, 2001.0), immediate=True)
        assert new_id == 7  # the vacated slot was recycled
        assert tree.free_slot_count == 0
        # Deleting the recycled id removes the *new* interval.
        assert tree.count((2000.0, 2001.0)) == 1
        assert tree.delete(7)
        assert tree.count((2000.0, 2001.0)) == 0
        assert not tree.delete(7)
        tree.check_invariants()

    def test_columns_do_not_leak_under_churn(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=64, seed=11))
        capacity_high_water = tree.column_capacity
        rng = np.random.default_rng(12)
        live = set(range(64))
        for _ in range(40):
            lefts, rights = random_batch(rng, 8)
            live.update(tree.insert_many(lefts, rights).tolist())
            victims = rng.choice(sorted(live), size=8, replace=False)
            tree.delete_many(victims)
            live.difference_update(int(v) for v in victims)
        # Steady-state churn recycles slots: capacity stays bounded instead
        # of growing by 8 columns per round.
        assert tree.column_capacity <= max(capacity_high_water, 4 * len(live) + 64)
        tree.check_invariants()

    def test_weighted_bulk_delete(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=250, seed=13, weighted=True)
        tree = AWIT(dataset)
        rng = np.random.default_rng(14)
        victims = rng.choice(250, size=100, replace=False)
        assert tree.delete_many(victims).all()
        survivors = sorted(set(range(250)) - set(int(v) for v in victims))
        reference = AWIT(dataset.subset(survivors))
        for query in make_queries(dataset, count=10):
            assert tree.count(query) == reference.count(query)
            assert tree.total_weight(query) == pytest.approx(reference.total_weight(query))
        tree.check_invariants()

    def test_interleaved_bulk_ops_match_scalar_loop(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=300, seed=15)
        bulk = AIT(dataset)
        scalar = AIT(dataset)
        rng = np.random.default_rng(16)
        # Pre-draw the whole op sequence so both twins replay identical ops.
        script = []
        live = list(range(300))
        next_id_guess = 300  # only used to script victims; ids are asserted equal
        for _ in range(8):
            lefts, rights = random_batch(rng, 30)
            inserted = list(range(next_id_guess, next_id_guess + 30))
            victims = rng.choice(live + inserted, size=10, replace=False).tolist()
            script.append((lefts, rights, victims))
            live = [i for i in live + inserted if i not in set(victims)]
            next_id_guess += 30
        for lefts, rights, victims in script:
            bulk_ids = bulk.insert_many(lefts, rights)
            scalar_ids = [scalar.insert((l, r)) for l, r in zip(lefts, rights)]
            scalar.flush_pool()
            bulk_flags = bulk.delete_many(victims)
            scalar_flags = [scalar.delete(v) for v in victims]
            assert bulk_flags.tolist() == scalar_flags
            # Identical id allocation (recycling included) keeps the twins
            # comparable op for op.
            assert bulk_ids.tolist() == scalar_ids
        assert bulk.size == scalar.size
        for query in make_queries(dataset, count=15):
            assert bulk.count(query) == scalar.count(query)
            assert set(bulk.report(query).tolist()) == set(scalar.report(query).tolist())
        bulk.check_invariants()
        scalar.check_invariants()


# ---------------------------------------------------------------------- #
# regressions
# ---------------------------------------------------------------------- #
class TestDeleteRegressions:
    def test_delete_of_unindexed_id_mutates_nothing(self, make_random_dataset):
        """An id that descends to no stab list must not drift size/version."""
        # The eager backend keeps the hand-built inconsistency below intact
        # (the lazy columnar backend would simply re-materialise the tree).
        tree = AIT(make_random_dataset(n=40, seed=17), build_backend="tree")
        # Simulate the inconsistency: a valid, undeleted id whose interval is
        # not actually present in the tree.
        tree._root = None
        tree._height = 0
        size = tree.size
        version = tree.structure_version
        deleted = set(tree._deleted)
        assert not tree.delete(3)
        assert tree.size == size
        assert tree.structure_version == version
        assert tree._deleted == deleted
        assert not tree.delete_many([3])[0]
        assert tree.size == size
        assert tree.structure_version == version

    def test_pool_epoch_tracks_pool_membership(self, make_random_dataset):
        """Pool-only changes move pool_epoch while structure_version stays put."""
        tree = AIT(make_random_dataset(n=100, seed=18), batch_pool_size=50)
        structure = tree.structure_version
        epoch = tree.pool_epoch
        pooled = tree.insert((1.0, 2.0))
        assert tree.structure_version == structure
        assert tree.pool_epoch > epoch

        # The regression: a consumer that caches the flat snapshot plus the
        # pool's matching ids (the documented structure_version recipe) must
        # be able to see the pooled delete *somewhere*.  structure_version
        # stays put by design — pool_epoch is the signal.
        count_with_pooled = tree.count((0.5, 2.5))
        epoch = tree.pool_epoch
        cached_pool_ids = {pooled}
        assert tree.delete(pooled)
        assert tree.structure_version == structure  # unchanged: pool-only op
        assert tree.pool_epoch > epoch              # ... but the epoch moved
        # Replaying the recipe with the epoch check drops the stale id.
        if tree.pool_epoch != epoch:
            cached_pool_ids = set(tree._pool)
        assert pooled not in cached_pool_ids
        assert tree.count((0.5, 2.5)) == count_with_pooled - 1

    def test_flush_pool_advances_pool_epoch(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=100, seed=19), batch_pool_size=50)
        tree.insert((1.0, 2.0))
        epoch = tree.pool_epoch
        tree.flush_pool()
        assert tree.pool_epoch > epoch
        assert tree.pending_pool_size == 0


# ---------------------------------------------------------------------- #
# incremental FlatAIT refresh
# ---------------------------------------------------------------------- #
class TestIncrementalSnapshot:
    @pytest.mark.parametrize("weighted", (False, True))
    def test_randomised_write_sequences_match_full_rebuild(
        self, make_random_dataset, weighted
    ):
        dataset = make_random_dataset(n=600, seed=20, weighted=weighted)
        tree = AWIT(dataset) if weighted else AIT(dataset)
        tree.flat()  # establish the initial (full) snapshot
        rng = np.random.default_rng(21)
        live = set(range(600))
        for round_index in range(10):
            if rng.random() < 0.6 or len(live) < 50:
                lefts, rights = random_batch(rng, int(rng.integers(5, 40)))
                weights = (
                    rng.integers(1, 30, lefts.shape[0]).astype(np.float64)
                    if weighted
                    else None
                )
                live.update(tree.insert_many(lefts, rights, weights=weights).tolist())
            else:
                victims = rng.choice(sorted(live), size=int(rng.integers(5, 30)), replace=False)
                tree.delete_many(victims)
                live.difference_update(int(v) for v in victims)
            incremental = tree.flat()
            expected = FlatAIT.from_tree(tree)  # independent full rebuild
            assert_flat_equal(incremental, expected)
        assert tree.snapshot_incremental_refreshes > 0

    def test_incremental_counter_stays_put_without_structural_change(
        self, make_random_dataset
    ):
        tree = AIT(make_random_dataset(n=500, seed=22))
        tree.flat()
        full_builds = tree.snapshot_full_builds
        tree.delete_many(list(range(20)))
        tree.flat()
        assert tree.snapshot_full_builds == full_builds
        assert tree.snapshot_incremental_refreshes >= 1

    def test_fallback_to_full_rebuild_above_threshold(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=300, seed=23), snapshot_dirty_threshold=0.0)
        tree.flat()
        full_builds = tree.snapshot_full_builds
        tree.delete_many([0, 1, 2])
        tree.flat()
        assert tree.snapshot_full_builds == full_builds + 1
        assert tree.snapshot_incremental_refreshes == 0

    def test_rebuild_invalidates_journal(self, make_random_dataset):
        """A height-limit rebuild replaces every node: the next snapshot is full."""
        dataset = IntervalDataset([0.0, 100.0], [1.0, 101.0])
        tree = AIT(dataset)
        tree.flat()
        for i in range(200):
            left = 200.0 + i
            tree.insert((left, left + 0.5), immediate=True)
        assert tree.rebuild_count >= 2
        full_builds = tree.snapshot_full_builds
        tree.flat()
        assert tree.snapshot_full_builds == full_builds + 1
        # ... and the fresh snapshot still matches a from-scratch flatten.
        assert_flat_equal(tree.flat(), FlatAIT.from_tree(tree))

    def test_batch_queries_after_incremental_refresh(self, make_random_dataset, make_queries):
        # Large tree + small delta keeps the dirty fraction under the
        # threshold, so the refresh below must take the incremental path.
        dataset = make_random_dataset(n=3000, seed=24)
        tree = AIT(dataset)
        tree.flat()
        rng = np.random.default_rng(25)
        lefts, rights = random_batch(rng, 30)
        tree.insert_many(lefts, rights)
        tree.delete_many(rng.choice(3000, size=20, replace=False))
        queries = make_queries(dataset, count=20)
        flat = tree.flat()
        assert flat.built_incrementally
        scalar_counts = [tree.count(q) for q in queries]
        assert tree.count_many(queries).tolist() == scalar_counts
        for query, chunk in zip(queries, tree.report_many(queries)):
            assert set(chunk.tolist()) == set(tree.report(query).tolist())
        samples = tree.sample_many(queries, 50, random_state=0)
        for query, row in zip(queries, samples):
            allowed = set(tree.report(query).tolist())
            if allowed:
                assert set(row.tolist()) <= allowed
