"""Tests for the RequestGateway: correctness, batching semantics, edge cases.

The micro-batching contract under test:

* results are identical to direct engine calls (count/report/total_weight)
  and distribution-correct for sampling;
* writes drained into a micro-batch apply before the batch's reads and
  never split a read group;
* one request's failure never poisons its batch-mates;
* shutdown flushes pending futures instead of dropping them.

Deterministic batching tests use a *paused* gateway (``start=False`` +
``process_pending``) so batch formation does not race the dispatcher;
concurrency tests use a running gateway with many client threads.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import AIT, IntervalDataset
from repro.core.errors import (
    EmptyResultError,
    GatewayClosedError,
    InvalidIntervalError,
    InvalidQueryError,
)
from repro.service import GatewayMetrics, RequestGateway, ShardedEngine


@pytest.fixture
def dataset() -> IntervalDataset:
    rng = np.random.default_rng(5)
    lefts = rng.uniform(0.0, 1000.0, 400)
    rights = lefts + rng.exponential(25.0, 400)
    return IntervalDataset(lefts, rights)


@pytest.fixture
def engine(dataset):
    with ShardedEngine(dataset, num_shards=2) as eng:
        eng.refresh()
        yield eng


@pytest.fixture
def oracle(dataset) -> AIT:
    return AIT(dataset)


QUERIES = [(q * 37.0 % 950.0, q * 37.0 % 950.0 + 40.0) for q in range(25)]


class TestCorrectness:
    def test_results_match_direct_engine_calls(self, engine, oracle):
        with RequestGateway(engine, max_batch_size=8, max_wait_ms=1.0) as gateway:
            for query in QUERIES:
                assert gateway.count(query, timeout=10) == oracle.count(query)
            got = gateway.report(QUERIES[0], timeout=10)
            assert sorted(got.tolist()) == sorted(oracle.report(QUERIES[0]).tolist())
            assert gateway.total_weight(QUERIES[0], timeout=10) == pytest.approx(
                float(oracle.count(QUERIES[0]))
            )

    def test_sample_draws_come_from_result_set(self, engine, oracle):
        query = QUERIES[3]
        member_ids = set(oracle.report(query).tolist())
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            row = gateway.sample(query, 64, timeout=10)
        assert len(row) == 64
        assert set(row.tolist()) <= member_ids

    def test_concurrent_clients_get_correct_answers(self, engine, oracle):
        expected = {query: oracle.count(query) for query in QUERIES}
        results: dict[int, list[int]] = {}
        with RequestGateway(engine, max_batch_size=16, max_wait_ms=2.0) as gateway:

            def client(worker: int) -> None:
                results[worker] = [gateway.count(query, timeout=30) for query in QUERIES]

            threads = [threading.Thread(target=client, args=(w,)) for w in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = gateway.stats()
        assert all(values == [expected[q] for q in QUERIES] for values in results.values())
        # 8 clients x 25 queries should actually coalesce under a 2ms window.
        assert stats["batches"]["dispatched"] < 8 * len(QUERIES)
        assert stats["requests"]["count"] == 8 * len(QUERIES)

    def test_writes_become_visible_to_later_reads(self, engine, oracle):
        probe = (200.0, 210.0)
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            before = gateway.count(probe, timeout=10)
            assert before == oracle.count(probe)
            new_id = gateway.insert((0.0, 999.0), timeout=10)
            assert gateway.count(probe, timeout=10) == before + 1
            assert gateway.delete(new_id, timeout=10) is True
            assert gateway.delete(new_id, timeout=10) is False
            assert gateway.count(probe, timeout=10) == before


class TestBatchingSemantics:
    def test_zero_in_flight_requests_at_window_expiry(self, engine):
        """An idle gateway dispatches nothing and stays healthy past its window."""
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            deadline = threading.Event()
            deadline.wait(0.05)  # dozens of expired windows with nothing queued
            assert gateway.is_running
            assert gateway.stats()["batches"]["dispatched"] == 0
            # ... and it still serves normally afterwards.
            assert gateway.count((0.0, 1000.0), timeout=10) > 0
            assert gateway.stats()["batches"]["dispatched"] == 1

    def test_max_batch_size_one_degenerates_to_scalar_dispatch(self, engine, oracle):
        gateway = RequestGateway(engine, max_batch_size=1, start=False)
        futures = [gateway.submit("count", query) for query in QUERIES[:6]]
        gateway.process_pending()
        assert [f.result(0) for f in futures] == [oracle.count(q) for q in QUERIES[:6]]
        histogram = gateway.stats()["batches"]["size_histogram"]
        assert histogram == {"1": 6}  # every dispatch was a singleton batch
        gateway.close()

    def test_writes_never_split_a_read_micro_batch(self, engine, oracle):
        """Interleaved writes coalesce with reads: one batch, one read group."""
        probe = (100.0, 150.0)
        before = oracle.count(probe)
        gateway = RequestGateway(engine, max_batch_size=64, start=False)
        read_1 = gateway.submit("count", probe)
        gateway.submit("insert", (0.0, 1000.0))
        read_2 = gateway.submit("count", probe)
        gateway.submit("insert", (0.0, 1000.0))
        read_3 = gateway.submit("count", probe)
        gateway.process_pending()

        # All five requests were dispatched as ONE micro-batch ...
        stats = gateway.stats()
        assert stats["batches"]["dispatched"] == 1
        assert stats["batches"]["size_histogram"] == {"5-8": 1}
        # ... so every read observed the same snapshot: both writes applied
        # at the batch boundary, regardless of arrival interleaving.
        assert read_1.result(0) == read_2.result(0) == read_3.result(0) == before + 2
        gateway.close()

    def test_exception_in_one_request_does_not_poison_batch_mates(self, engine):
        """A raising sample request fails alone; same-group mates still succeed."""
        empty_query = (5000.0, 5001.0)  # beyond the domain: q ∩ X = ∅
        live_query = (0.0, 1000.0)
        gateway = RequestGateway(engine, max_batch_size=64, start=False)
        good_1 = gateway.submit("sample", live_query, 8, on_empty="raise")
        bad = gateway.submit("sample", empty_query, 8, on_empty="raise")
        good_2 = gateway.submit("sample", live_query, 8, on_empty="raise")
        gateway.process_pending()

        assert len(good_1.result(0)) == 8
        assert len(good_2.result(0)) == 8
        with pytest.raises(EmptyResultError):
            bad.result(0)
        stats = gateway.stats()
        assert stats["batches"]["fallbacks"] == 1
        assert stats["errors"] == {"sample": 1}
        gateway.close()

    def test_clean_shutdown_completes_pending_futures(self, engine, oracle):
        expected = oracle.count(QUERIES[0])
        with RequestGateway(engine, max_batch_size=4, max_wait_ms=50.0) as gateway:
            futures = [gateway.submit("count", QUERIES[0]) for _ in range(50)]
        # close() (via __exit__) must flush, not cancel: every future done.
        assert all(future.done() for future in futures)
        assert [future.result(0) for future in futures] == [expected] * 50
        with pytest.raises(RuntimeError):
            gateway.submit("count", QUERIES[0])

    def test_cancelled_future_is_skipped_without_breaking_the_batch(self, engine, oracle):
        gateway = RequestGateway(engine, max_batch_size=64, start=False)
        cancelled = gateway.submit("count", QUERIES[0])
        kept = gateway.submit("count", QUERIES[1])
        assert cancelled.cancel()
        gateway.process_pending()
        assert kept.result(0) == oracle.count(QUERIES[1])
        assert cancelled.cancelled()
        gateway.close()


class TestValidationAndLifecycle:
    def test_malformed_requests_fail_at_submit_time(self, engine):
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            with pytest.raises((InvalidQueryError, InvalidIntervalError)):
                gateway.submit("count", (10.0, 2.0))  # left > right
            with pytest.raises((InvalidQueryError, InvalidIntervalError)):
                gateway.submit("insert", (float("nan"), 1.0))
            with pytest.raises(InvalidQueryError):
                gateway.submit("sample", (0.0, 1.0), -3)
            with pytest.raises(ValueError):
                gateway.submit("increment", (0.0, 1.0))
            with pytest.raises(ValueError):
                gateway.submit("sample", (0.0, 1.0), 4, on_empty="explode")
            # The gateway still works after rejecting garbage.
            assert gateway.count((0.0, 1000.0), timeout=10) > 0

    def test_constructor_validation(self, engine):
        with pytest.raises(ValueError):
            RequestGateway(engine, max_batch_size=0)
        with pytest.raises(ValueError):
            RequestGateway(engine, max_wait_ms=-1.0)

    def test_process_pending_requires_paused_gateway(self, engine):
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            with pytest.raises(RuntimeError):
                gateway.process_pending()

    def test_close_is_idempotent(self, engine):
        gateway = RequestGateway(engine, max_wait_ms=1.0)
        gateway.close()
        gateway.close()
        assert not gateway.is_running

    def test_external_metrics_object_is_used(self, engine):
        metrics = GatewayMetrics()
        with RequestGateway(engine, max_wait_ms=1.0, metrics=metrics) as gateway:
            gateway.count((0.0, 1000.0), timeout=10)
        assert metrics.snapshot()["requests"] == {"count": 1}

    def test_stats_shape(self, engine):
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            gateway.count((0.0, 500.0), timeout=10)
            gateway.sample((0.0, 500.0), 4, timeout=10)
            stats = gateway.stats()
        assert set(stats) == {
            "requests",
            "completions",
            "errors",
            "timed_out",
            "shed",
            "batches",
            "latency_ms",
            "queue",
            "engine",
        }
        assert stats["queue"] == {"depth": 0, "max_queue_depth": 8192}
        assert stats["engine"]["executor"] == "serial"
        assert stats["engine"]["num_shards"] >= 1
        assert stats["completions"] == {"count": 1, "sample": 1}
        for op in ("count", "sample"):
            summary = stats["latency_ms"][op]
            assert summary["count"] == 1
            assert summary["p50_ms"] <= summary["p95_ms"] <= summary["p99_ms"]
            assert summary["max_ms"] > 0


class TestCloseDurability:
    """Lifecycle contract added with the durability layer (v1.4)."""

    def test_submit_after_close_raises_gateway_closed(self, engine):
        gateway = RequestGateway(engine, max_wait_ms=1.0)
        gateway.close()
        with pytest.raises(GatewayClosedError, match=r"gateway is closed"):
            gateway.submit("count", (0.0, 10.0))
        # pre-1.4 callers caught RuntimeError; the new type must still match
        with pytest.raises(RuntimeError):
            gateway.count((0.0, 10.0), timeout=1)

    def test_close_during_concurrent_submits_never_drops_futures(self, engine):
        gateway = RequestGateway(engine, max_wait_ms=1.0)
        futures, rejected = [], []

        def client(base):
            for i in range(20):
                try:
                    futures.append(gateway.submit("insert", (base + i, base + i + 1.0)))
                except GatewayClosedError:
                    rejected.append(i)
                    return

        threads = [threading.Thread(target=client, args=(k * 100.0,)) for k in range(4)]
        for t in threads:
            t.start()
        gateway.close()
        for t in threads:
            t.join()
        # every accepted future resolved (no hangs, no drops); rejects raised cleanly
        ids = [f.result(timeout=5) for f in futures]
        assert len(ids) == len(set(ids))

    def test_close_with_inflight_writes_is_durable(self, dataset, tmp_path):
        """Writes acknowledged before close() survive a reopen (WAL ordering)."""
        directory = str(tmp_path / "gateway-close")
        engine = ShardedEngine(dataset, num_shards=2)
        engine.refresh()
        engine.save_snapshot(directory)
        # long max_wait: requests queue up and are drained by close() itself
        gateway = RequestGateway(engine, max_batch_size=4, max_wait_ms=200.0)
        futures = [
            gateway.submit("insert", (float(i), float(i) + 1.0)) for i in range(24)
        ]
        gateway.close()
        ids = [f.result(timeout=0) for f in futures]
        assert len(set(ids)) == 24
        engine.close()

        with ShardedEngine.open(directory) as restored:
            assert restored.size == len(dataset) + 24
            for global_id in ids:
                assert restored.shard_of(int(global_id)) in (0, 1)


class TestCheckpoint:
    """gateway.checkpoint(): snapshots taken on the dispatcher thread.

    Calling engine.save_snapshot from another thread while the gateway is
    dispatching can lose a write (journaled to the outgoing epoch's WAL,
    missing from the new snapshot); the checkpoint op closes that hole by
    running inside the dispatch loop, serialised with every write.
    """

    def test_checkpoint_round_trips_through_reopen(self, dataset, tmp_path):
        directory = str(tmp_path / "ckpt")
        with ShardedEngine(dataset, num_shards=2) as engine:
            with RequestGateway(engine, max_wait_ms=1.0) as gateway:
                before = gateway.insert((1.0, 2.0), timeout=10)
                epoch = gateway.checkpoint(directory, timeout=30)
                assert epoch == 1
                after = gateway.insert((3.0, 4.0), timeout=10)
                want = gateway.count((0.0, 2000.0), timeout=10)
        with ShardedEngine.open(directory) as restored:
            # the pre-checkpoint write came from the snapshot, the
            # post-checkpoint one from the epoch-1 WAL replay
            assert restored.count((0.0, 2000.0)) == want
            assert restored.delete(before) and restored.delete(after)

    def test_checkpoint_concurrent_with_writers_loses_nothing(self, dataset, tmp_path):
        directory = str(tmp_path / "ckpt-race")
        acknowledged: list[int] = []
        lock = threading.Lock()
        with ShardedEngine(dataset, num_shards=2) as engine:
            with RequestGateway(engine, max_batch_size=8, max_wait_ms=0.5) as gateway:

                def writer(base: float) -> None:
                    for i in range(30):
                        new_id = gateway.insert((base + i, base + i + 5.0), timeout=30)
                        with lock:
                            acknowledged.append(new_id)

                threads = [
                    threading.Thread(target=writer, args=(k * 100.0,)) for k in range(4)
                ]
                for t in threads:
                    t.start()
                for _ in range(3):  # checkpoints interleave with live writes
                    gateway.checkpoint(directory, timeout=60)
                for t in threads:
                    t.join()
                gateway.checkpoint(directory, timeout=60)
        assert len(acknowledged) == 120
        with ShardedEngine.open(directory) as restored:
            # every acknowledged insert is present and owned by a real shard
            assert restored.delete_many(acknowledged).all()

    def test_checkpoint_requires_snapshot_capable_engine(self, dataset):
        tree = AIT(dataset)  # batch API but no save_snapshot
        with RequestGateway(tree, start=False) as gateway:
            with pytest.raises(ValueError, match=r"snapshot"):
                gateway.submit("checkpoint")

    def test_checkpoint_error_lands_on_its_future_only(self, engine):
        # engine not attached to a directory and none given -> ValueError,
        # delivered on the checkpoint future; batch-mates are unaffected
        with RequestGateway(engine, max_wait_ms=1.0) as gateway:
            bad = gateway.submit("checkpoint")
            good = gateway.submit("count", (0.0, 10.0))
            with pytest.raises(ValueError, match=r"not attached"):
                bad.result(timeout=10)
            assert isinstance(good.result(timeout=10), int)


class TestBoundedIntake:
    """The v1.8 overload contract: submit sheds fast once the queue is full."""

    def test_submit_sheds_past_max_queue_depth(self, engine):
        from repro import GatewayOverloadError

        gateway = RequestGateway(engine, max_queue_depth=3, start=False)
        for _ in range(3):
            gateway.submit("count", (0.0, 10.0))
        with pytest.raises(GatewayOverloadError, match=r"max_queue_depth=3"):
            gateway.submit("count", (0.0, 10.0))
        stats = gateway.stats()
        assert stats["shed"] == {"count": 1}
        assert stats["queue"] == {"depth": 3, "max_queue_depth": 3}
        # draining the queue re-opens the intake
        assert gateway.process_pending() == 3
        future = gateway.submit("count", (0.0, 10.0))
        gateway.process_pending()
        assert isinstance(future.result(timeout=10), int)
        gateway.close()

    def test_shed_request_never_entered_the_queue(self, engine):
        from repro import GatewayOverloadError

        gateway = RequestGateway(engine, max_queue_depth=1, start=False)
        gateway.submit("count", (0.0, 10.0))
        with pytest.raises(GatewayOverloadError):
            gateway.submit("insert", (1.0, 2.0))
        stats = gateway.stats()
        # the shed insert was not recorded as a request and will never run
        assert stats["requests"] == {"count": 1}
        assert gateway.process_pending() == 1
        gateway.close()

    def test_unbounded_intake_when_disabled(self, engine):
        gateway = RequestGateway(engine, max_queue_depth=None, start=False)
        for _ in range(32):
            gateway.submit("count", (0.0, 10.0))
        assert gateway.stats()["queue"]["max_queue_depth"] is None
        assert gateway.process_pending() == 32
        gateway.close()

    def test_constructor_validation(self, engine):
        with pytest.raises(ValueError, match=r"max_queue_depth must be >= 1 or None"):
            RequestGateway(engine, max_queue_depth=0)


class TestTimeoutSemantics:
    """The v1.8 wrapper-timeout contract: cancel what has not started."""

    def test_wrapper_timeout_cancels_unstarted_request(self, engine):
        gateway = RequestGateway(engine, max_wait_ms=1.0, start=False)
        with pytest.raises(TimeoutError, match=r"cancelled before dispatch"):
            gateway.count((0.0, 10.0), timeout=0.05)
        stats = gateway.stats()
        assert stats["timed_out"] == {"count": 1}
        # the cancelled request is dropped at dispatch, not executed late
        assert gateway.process_pending() == 1
        assert gateway.stats()["completions"] == {}
        gateway.close()

    def test_timed_out_write_does_not_apply_invisibly(self, engine):
        before = engine.size
        gateway = RequestGateway(engine, max_wait_ms=1.0, start=False)
        with pytest.raises(TimeoutError, match=r"cancelled before dispatch"):
            gateway.insert((500.0, 510.0), timeout=0.05)
        gateway.process_pending()
        gateway.close()
        assert engine.size == before  # the write never landed

    def test_wrapper_timeout_does_not_mask_worker_timeout(self, engine):
        from repro import WorkerTimeoutError

        class _TimeoutingEngine:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def count_many(self, queries):
                raise WorkerTimeoutError("shard worker (pid 7) did not reply within 5s")

        with RequestGateway(_TimeoutingEngine(engine), max_wait_ms=1.0) as gateway:
            # the request's own timeout-class error must surface, not be
            # rewritten into a wrapper wait-timeout
            with pytest.raises(WorkerTimeoutError, match=r"did not reply within"):
                gateway.count((0.0, 10.0), timeout=30)
