"""Tests for AIT-V: bucketing invariants, correctness, sampling and space behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, AITV, IntervalDataset
from repro.stats import chi_square_uniformity


class TestBucketing:
    def test_default_bucket_size_is_log_n(self, random_dataset):
        index = AITV(random_dataset)
        n = len(random_dataset)
        assert index.bucket_size == int(np.ceil(np.log2(n)))
        assert index.bucket_count == int(np.ceil(n / index.bucket_size))

    def test_every_interval_in_exactly_one_bucket(self, random_dataset):
        index = AITV(random_dataset)
        members = index._bucket_members
        real = members[members >= 0]
        assert sorted(real.tolist()) == list(range(len(random_dataset)))

    def test_bucket_of_returns_owning_bucket(self, random_dataset):
        index = AITV(random_dataset)
        for interval_id in (0, 5, len(random_dataset) - 1):
            bucket = index.bucket_of(interval_id)
            assert interval_id in index._bucket_members[bucket].tolist()

    def test_bucket_of_unknown_raises(self, random_dataset):
        index = AITV(random_dataset)
        with pytest.raises(KeyError):
            index.bucket_of(len(random_dataset) + 100)

    def test_virtual_interval_spans_its_members(self, random_dataset):
        index = AITV(random_dataset)
        virtual = index._virtual_dataset
        for bucket in range(index.bucket_count):
            members = index._bucket_members[bucket]
            members = members[members >= 0]
            assert virtual.lefts[bucket] == pytest.approx(random_dataset.lefts[members].min())
            assert virtual.rights[bucket] == pytest.approx(random_dataset.rights[members].max())

    def test_explicit_bucket_size(self, random_dataset):
        index = AITV(random_dataset, bucket_size=4)
        assert index.bucket_size == 4

    def test_invalid_bucket_size_raises(self, random_dataset):
        with pytest.raises(ValueError):
            AITV(random_dataset, bucket_size=0)

    def test_single_interval_dataset(self):
        index = AITV(IntervalDataset([1.0], [2.0]))
        assert index.bucket_count == 1
        assert index.count((0.0, 5.0)) == 1
        assert set(index.sample((0.0, 5.0), 10, random_state=0).tolist()) == {0}


class TestCorrectness:
    def test_count_and_report_match_oracle(self, random_dataset, make_queries, ground_truth):
        index = AITV(random_dataset)
        for query in make_queries(random_dataset, count=30, extent=0.07):
            truth = ground_truth(random_dataset, query)
            assert set(index.report(query).tolist()) == truth
            assert index.count(query) == len(truth)

    def test_count_virtual_upper_bounds_bucket_hits(self, random_dataset, make_queries):
        index = AITV(random_dataset)
        for query in make_queries(random_dataset, count=10):
            assert index.count_virtual(query) <= index.bucket_count

    def test_report_on_clustered_data(self, make_random_dataset, make_queries, ground_truth):
        dataset = make_random_dataset(n=500, seed=21, kind="clustered")
        index = AITV(dataset)
        for query in make_queries(dataset, count=15):
            assert set(index.report(query).tolist()) == ground_truth(dataset, query)

    def test_empty_region(self, random_dataset):
        index = AITV(random_dataset)
        _, hi = random_dataset.domain()
        assert index.count((hi + 5.0, hi + 6.0)) == 0
        assert index.sample((hi + 5.0, hi + 6.0), 10, random_state=0).shape == (0,)


class TestSampling:
    def test_samples_are_members_of_result_set(self, random_dataset, make_queries, ground_truth):
        index = AITV(random_dataset)
        for query in make_queries(random_dataset, count=15):
            truth = ground_truth(random_dataset, query)
            if not truth:
                continue
            samples = index.sample(query, 300, random_state=2)
            assert samples.shape == (300,)
            assert set(samples.tolist()) <= truth

    def test_sampling_uniformity(self, random_dataset, make_queries, ground_truth):
        index = AITV(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.15, seed=31)[0]
        truth = sorted(ground_truth(random_dataset, query))
        assert len(truth) >= 10
        samples = index.sample(query, 40 * len(truth), random_state=5)
        fit = chi_square_uniformity(samples.tolist(), truth)
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_candidate_draw_overhead_is_moderate(self, make_random_dataset, make_queries):
        """The paper observes ~1.02-1.09 candidate draws per accepted sample."""
        dataset = make_random_dataset(n=3000, seed=40)
        index = AITV(dataset)
        query = make_queries(dataset, count=1, extent=0.2, seed=41)[0]
        samples = index.sample(query, 1000, random_state=6)
        assert samples.shape == (1000,)
        assert index.last_candidate_draws < 20 * 1000

    def test_fallback_terminates_when_rejection_never_succeeds(self):
        # Two buckets whose virtual intervals overlap the query, but only one real
        # interval does; with a hostile bucket size most draws reject, and a query
        # hitting a gap between members exercises the exact fallback.
        lefts = [0.0, 100.0, 0.5, 99.0]
        rights = [1.0, 101.0, 1.5, 100.5]
        dataset = IntervalDataset(lefts, rights)
        index = AITV(dataset, bucket_size=2, max_rejection_rounds=2)
        # Query an area covered by the virtual span [0, 101] but by no real interval.
        samples = index.sample((50.0, 60.0), 5, random_state=0)
        assert samples.shape == (0,)

    def test_fallback_fills_samples_when_acceptance_is_rare(self):
        lefts = [0.0, 1000.0]
        rights = [1.0, 1001.0]
        dataset = IntervalDataset(lefts, rights)
        index = AITV(dataset, bucket_size=2, max_rejection_rounds=1)
        samples = index.sample((999.0, 1002.0), 20, random_state=0)
        assert samples.shape == (20,)
        assert set(samples.tolist()) == {1}

    def test_sample_zero(self, random_dataset, make_queries):
        index = AITV(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        assert index.sample(query, 0, random_state=0).shape == (0,)

    def test_on_empty_raise(self, random_dataset):
        from repro import EmptyResultError

        index = AITV(random_dataset)
        _, hi = random_dataset.domain()
        with pytest.raises(EmptyResultError):
            index.sample((hi + 10.0, hi + 11.0), 5, on_empty="raise")


class TestSpace:
    def test_ait_v_uses_less_memory_than_ait(self, make_random_dataset):
        dataset = make_random_dataset(n=4000, seed=50)
        ait = AIT(dataset)
        ait_v = AITV(dataset)
        assert ait_v.memory_bytes() < ait.memory_bytes()

    def test_virtual_tree_is_much_smaller(self, make_random_dataset):
        dataset = make_random_dataset(n=4000, seed=51)
        index = AITV(dataset)
        assert index.virtual_tree.size == index.bucket_count
        assert index.bucket_count <= len(dataset) // index.bucket_size + 1
