"""Tests for the experiment configuration and the result/report containers."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, ExperimentResult, format_table


class TestExperimentConfig:
    def test_default_preset(self):
        config = ExperimentConfig.default()
        assert config.datasets == ("book", "btc", "renfe", "taxi")
        assert config.sample_size == 1000
        assert config.extent_fraction == 0.08

    def test_smoke_preset_is_smaller(self):
        assert ExperimentConfig.smoke().dataset_size < ExperimentConfig.default().dataset_size

    def test_paper_scale_preset_matches_paper_workload(self):
        config = ExperimentConfig.paper_scale()
        assert config.query_count == 1000
        assert config.sample_size == 1000
        assert config.update_count == 5000

    def test_with_overrides(self):
        config = ExperimentConfig.default().with_overrides(dataset_size=123, datasets=("btc",))
        assert config.dataset_size == 123
        assert config.datasets == ("btc",)
        # original untouched (frozen dataclass semantics)
        assert ExperimentConfig.default().dataset_size != 123

    def test_seeds_are_deterministic_and_distinct(self):
        config = ExperimentConfig.default()
        assert config.dataset_seed("book") == config.dataset_seed("book")
        assert config.dataset_seed("book") != config.dataset_seed("btc")
        assert config.dataset_seed("book") != config.query_seed("book")
        assert config.dataset_seed("book") > 0

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            ExperimentConfig.default().dataset_size = 5  # type: ignore[misc]


class TestExperimentResult:
    def make_result(self) -> ExperimentResult:
        result = ExperimentResult("tableX", "Demo", columns=["algorithm", "value"])
        result.add_row(algorithm="ait", value=1.5)
        result.add_row(algorithm="hint", value=20.0)
        return result

    def test_add_row_and_column(self):
        result = self.make_result()
        assert result.column("algorithm") == ["ait", "hint"]
        assert result.column("value") == [1.5, 20.0]

    def test_row_by(self):
        result = self.make_result()
        assert result.row_by(algorithm="hint")["value"] == 20.0
        with pytest.raises(KeyError):
            result.row_by(algorithm="nope")

    def test_to_text_contains_values_and_reference(self):
        result = self.make_result()
        result.paper_reference = [{"algorithm": "ait", "value": 0.8}]
        result.notes = "shape check"
        text = result.to_text()
        assert "tableX" in text
        assert "ait" in text
        assert "paper reference" in text
        assert "shape check" in text

    def test_to_csv(self, tmp_path):
        result = self.make_result()
        path = tmp_path / "out.csv"
        result.to_csv(path)
        content = path.read_text().strip().splitlines()
        assert content[0] == "algorithm,value"
        assert len(content) == 3

    def test_to_markdown(self):
        md = self.make_result().to_markdown()
        assert md.startswith("| algorithm | value |")
        assert "| ait |" in md

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}], ["a", "b"])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_empty_rows(self):
        text = format_table([], ["a", "b"])
        assert "a" in text
