"""Tests for the serving-layer telemetry primitives (repro.service.metrics)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service.metrics import BatchSizeHistogram, GatewayMetrics, LatencyReservoir


class TestLatencyReservoir:
    def test_exact_percentiles_below_capacity(self):
        reservoir = LatencyReservoir(capacity=1000)
        values = np.arange(1, 501) / 1000.0  # 1ms .. 500ms, fully retained
        for value in values:
            reservoir.record(value)
        assert reservoir.count == 500
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert reservoir.percentile(q) == pytest.approx(
                float(np.percentile(values, q, method="inverted_cdf")), rel=0.01
            )

    def test_reservoir_downsampling_tracks_the_stream(self):
        reservoir = LatencyReservoir(capacity=512, seed=7)
        rng = np.random.default_rng(3)
        stream = rng.uniform(0.0, 1.0, 20_000)
        for value in stream:
            reservoir.record(value)
        assert reservoir.count == 20_000
        # Uniform[0,1]: the sampled p50/p95 must land near the true quantiles.
        assert reservoir.percentile(50.0) == pytest.approx(0.5, abs=0.08)
        assert reservoir.percentile(95.0) == pytest.approx(0.95, abs=0.05)

    def test_snapshot_reports_milliseconds(self):
        reservoir = LatencyReservoir()
        reservoir.record(0.004)
        reservoir.record(0.006)
        summary = reservoir.snapshot_ms()
        assert summary["count"] == 2
        assert summary["mean_ms"] == pytest.approx(5.0)
        assert summary["max_ms"] == pytest.approx(6.0)
        assert summary["p50_ms"] == pytest.approx(4.0)

    def test_empty_reservoir(self):
        reservoir = LatencyReservoir()
        assert reservoir.percentile(95.0) == 0.0
        assert reservoir.snapshot_ms()["count"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)
        with pytest.raises(ValueError):
            LatencyReservoir().percentile(101.0)


class TestBatchSizeHistogram:
    def test_power_of_two_bucketing(self):
        histogram = BatchSizeHistogram()
        for size in (1, 2, 3, 4, 5, 8, 9, 16, 17):
            histogram.record(size)
        assert histogram.snapshot() == {
            "1": 1,
            "2": 1,
            "3-4": 2,
            "5-8": 2,
            "9-16": 2,
            "17-32": 1,
        }

    def test_mean_and_validation(self):
        histogram = BatchSizeHistogram()
        assert histogram.mean() == 0.0
        histogram.record(10)
        histogram.record(20)
        assert histogram.mean() == pytest.approx(15.0)
        with pytest.raises(ValueError):
            histogram.record(0)


class TestGatewayMetrics:
    def test_snapshot_aggregates_everything(self):
        metrics = GatewayMetrics()
        for _ in range(3):
            metrics.record_request("count")
        metrics.record_request("sample")
        metrics.record_batch(size=4, groups=2)
        metrics.record_fallback()
        metrics.record_completion("count", 0.001)
        metrics.record_completion("count", 0.003)
        metrics.record_completion("sample", 0.010, error=True)
        stats = metrics.snapshot()
        assert stats["requests"] == {"count": 3, "sample": 1}
        assert stats["completions"] == {"count": 2, "sample": 1}
        assert stats["errors"] == {"sample": 1}
        assert stats["batches"]["dispatched"] == 1
        assert stats["batches"]["mean_size"] == 4.0
        assert stats["batches"]["dispatch_groups"] == 2
        assert stats["batches"]["fallbacks"] == 1
        assert stats["latency_ms"]["count"]["count"] == 2
        assert stats["latency_ms"]["count"]["max_ms"] == pytest.approx(3.0)

    def test_thread_safety_under_concurrent_recording(self):
        metrics = GatewayMetrics()

        def hammer(op: str) -> None:
            for _ in range(2_000):
                metrics.record_request(op)
                metrics.record_completion(op, 0.001)

        threads = [
            threading.Thread(target=hammer, args=(op,))
            for op in ("count", "count", "sample", "report")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = metrics.snapshot()
        assert stats["requests"] == {"count": 4_000, "report": 2_000, "sample": 2_000}
        assert stats["completions"] == stats["requests"]
        assert stats["latency_ms"]["count"]["count"] == 4_000
