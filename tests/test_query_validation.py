"""Tests for query coercion and sample-size validation plus the error hierarchy."""

from __future__ import annotations

import pytest

from repro import Interval, InvalidQueryError, ReproError
from repro.core import errors
from repro.core.query import coerce_query, validate_sample_size


class TestCoerceQuery:
    def test_accepts_interval(self):
        assert coerce_query(Interval(1.0, 2.0)) == (1.0, 2.0)

    def test_accepts_tuple_and_list(self):
        assert coerce_query((1, 2)) == (1.0, 2.0)
        assert coerce_query([1.5, 2.5]) == (1.5, 2.5)

    def test_point_query(self):
        assert coerce_query((3.0, 3.0)) == (3.0, 3.0)

    def test_inverted_query_raises(self):
        with pytest.raises(InvalidQueryError):
            coerce_query((5.0, 1.0))

    def test_non_numeric_raises(self):
        with pytest.raises(InvalidQueryError):
            coerce_query(("a", "b"))

    def test_wrong_arity_raises(self):
        with pytest.raises(InvalidQueryError):
            coerce_query((1.0, 2.0, 3.0))
        with pytest.raises(InvalidQueryError):
            coerce_query(42)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_non_finite_raises(self, bad):
        with pytest.raises(InvalidQueryError):
            coerce_query((0.0, bad))


class TestValidateSampleSize:
    def test_accepts_zero_and_positive(self):
        assert validate_sample_size(0) == 0
        assert validate_sample_size(10) == 10

    def test_accepts_integral_float(self):
        assert validate_sample_size(5.0) == 5

    def test_rejects_negative(self):
        with pytest.raises(InvalidQueryError):
            validate_sample_size(-1)

    def test_rejects_fractional(self):
        with pytest.raises(InvalidQueryError):
            validate_sample_size(2.5)

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidQueryError):
            validate_sample_size("ten")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.InvalidIntervalError,
            errors.InvalidQueryError,
            errors.InvalidWeightError,
            errors.EmptyDatasetError,
            errors.EmptyResultError,
            errors.StructureStateError,
            errors.UnsupportedOperationError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_value_errors_are_also_value_errors(self):
        assert issubclass(errors.InvalidIntervalError, ValueError)
        assert issubclass(errors.InvalidQueryError, ValueError)
        assert issubclass(errors.EmptyResultError, LookupError)
