"""Tests for the versioned snapshot container and FlatAIT save/load."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import AIT, AWIT, FlatAIT, SnapshotCorruptError
from repro.persist import CHECKSUM_ALGORITHM, flip_byte, load_arrays, save_arrays, truncate_file
from repro.persist.snapshot import FORMAT_VERSION, PAGE_SIZE, read_header


def _sample_arrays():
    rng = np.random.default_rng(11)
    return {
        "ints": rng.integers(0, 1 << 40, 257, dtype=np.int64),
        "floats": rng.normal(size=1023),
        "bytes": rng.integers(0, 256, 33, dtype=np.uint8),
        "empty": np.empty(0, dtype=np.float64),
    }


class TestContainer:
    def test_round_trip_eager_and_mmap(self, tmp_path):
        path = tmp_path / "arrays.snap"
        save_arrays(path, _sample_arrays(), meta={"kind": "test", "answer": 42})
        for mmap in (False, True):
            arrays, meta = load_arrays(path, mmap=mmap)
            assert meta["kind"] == "test" and meta["answer"] == 42
            for name, expected in _sample_arrays().items():
                got = arrays[name]
                assert got.dtype == expected.dtype
                np.testing.assert_array_equal(got, expected)

    def test_loaded_arrays_are_read_only(self, tmp_path):
        path = tmp_path / "ro.snap"
        save_arrays(path, _sample_arrays())
        for mmap in (False, True):
            arrays, _ = load_arrays(path, mmap=mmap)
            for name, arr in arrays.items():
                if arr.size:
                    with pytest.raises((ValueError, TypeError)):
                        arr[0] = 0

    def test_none_values_are_skipped(self, tmp_path):
        path = tmp_path / "none.snap"
        save_arrays(path, {"a": np.arange(4), "b": None})
        arrays, _ = load_arrays(path)
        assert set(arrays) == {"a"}

    def test_header_is_page_aligned(self, tmp_path):
        path = tmp_path / "align.snap"
        save_arrays(path, _sample_arrays())
        header, data_start = read_header(path)
        assert data_start >= 16
        assert header["format_version"] == FORMAT_VERSION
        assert header["checksum_algorithm"] == CHECKSUM_ALGORITHM
        # every segment offset is page-aligned relative to the data start
        for entry in header["arrays"]:
            assert entry["offset"] % PAGE_SIZE == 0

    def test_bit_flip_in_payload_detected(self, tmp_path):
        path = tmp_path / "flip.snap"
        save_arrays(path, _sample_arrays())
        _, data_start = read_header(path)
        flip_byte(path, data_start + 17)
        with pytest.raises(SnapshotCorruptError, match=r"checksum"):
            load_arrays(path, mmap=False)
        # verification can be skipped explicitly (e.g. benchmarking mmap cost)
        arrays, _ = load_arrays(path, verify=False)
        assert "ints" in arrays

    def test_bad_magic_detected(self, tmp_path):
        path = tmp_path / "magic.snap"
        save_arrays(path, _sample_arrays())
        flip_byte(path, 0)
        with pytest.raises(SnapshotCorruptError):
            load_arrays(path)

    def test_corrupt_header_json_detected(self, tmp_path):
        path = tmp_path / "header.snap"
        save_arrays(path, _sample_arrays())
        flip_byte(path, 20)  # inside the JSON header
        with pytest.raises(SnapshotCorruptError):
            load_arrays(path)

    def test_truncated_file_detected(self, tmp_path):
        path = tmp_path / "trunc.snap"
        save_arrays(path, _sample_arrays())
        truncate_file(path, os.path.getsize(path) - 64)
        with pytest.raises(SnapshotCorruptError):
            load_arrays(path, mmap=False)

    def test_no_tmp_file_left_behind(self, tmp_path):
        path = tmp_path / "atomic.snap"
        save_arrays(path, _sample_arrays())
        leftovers = [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]
        assert leftovers == []


class TestFlatSaveLoad:
    @pytest.fixture
    def flat(self, make_random_dataset) -> FlatAIT:
        return AIT(make_random_dataset(600, seed=3)).flat()

    def test_round_trip_bit_identical(self, tmp_path, flat):
        path = tmp_path / "flat.snap"
        flat.save(path)
        for mmap in (False, True):
            loaded = FlatAIT.load(path, mmap=mmap)
            assert flat.arrays_equal(loaded, include_rank_keys=True)
            assert loaded.node_count == flat.node_count

    def test_loaded_flat_answers_queries(self, tmp_path, flat, make_random_dataset):
        path = tmp_path / "flat.snap"
        flat.save(path)
        loaded = FlatAIT.load(path)
        rng = np.random.default_rng(8)
        lefts = rng.uniform(0.0, 900.0, 40)
        queries = np.stack((lefts, lefts + 60.0), axis=1)
        np.testing.assert_array_equal(loaded.count_many(queries), flat.count_many(queries))
        got = loaded.sample_many(queries[:4], 16, random_state=5)
        want = flat.sample_many(queries[:4], 16, random_state=5)
        for g, w in zip(got, want):
            np.testing.assert_array_equal(g, w)

    def test_weighted_round_trip(self, tmp_path, make_random_dataset):
        data = make_random_dataset(400, seed=9, weighted=True)
        flat = AWIT(data).flat()
        path = tmp_path / "awit.snap"
        flat.save(path)
        loaded = FlatAIT.load(path)
        assert flat.arrays_equal(loaded, include_rank_keys=True)
        assert loaded.is_weighted

    def test_corrupt_flat_snapshot_raises(self, tmp_path, flat):
        path = tmp_path / "bad.snap"
        flat.save(path)
        _, data_start = read_header(path)
        flip_byte(path, data_start + 5)
        with pytest.raises(SnapshotCorruptError):
            FlatAIT.load(path, mmap=False)
