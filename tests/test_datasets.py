"""Tests for dataset generators, statistics, query workloads and the CSV loader."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IntervalDataset, InvalidIntervalError, InvalidQueryError
from repro.core.errors import EmptyDatasetError
from repro.datasets import (
    PAPER_DATASETS,
    attach_random_weights,
    compute_statistics,
    dataset_names,
    generate_clustered,
    generate_dataset,
    generate_paper_dataset,
    generate_point_intervals,
    generate_queries,
    generate_uniform,
    load_csv,
    save_csv,
    stabbing_queries,
)


class TestPaperSpecs:
    def test_all_four_datasets_registered(self):
        assert dataset_names() == ["book", "btc", "renfe", "taxi"]

    def test_spec_values_match_table2(self):
        spec = PAPER_DATASETS["taxi"]
        assert spec.cardinality == 106_685_540
        assert spec.domain_size == 79_901_357
        assert spec.median_length == 663

    def test_scaled_spec(self):
        assert PAPER_DATASETS["book"].scaled(1000).cardinality == 1000


class TestGenerators:
    @pytest.mark.parametrize("name", ["book", "btc", "renfe", "taxi"])
    def test_generated_statistics_track_spec(self, name):
        spec = PAPER_DATASETS[name]
        dataset = generate_paper_dataset(name, n=20_000, random_state=0)
        stats = compute_statistics(dataset)
        assert stats.cardinality == 20_000
        assert stats.domain_size <= spec.domain_size
        assert stats.min_length >= spec.min_length - 1e-6
        assert stats.max_length <= spec.max_length + 1e-6
        # The median should land within a factor of ~2 of the published value.
        assert 0.5 * spec.median_length <= stats.median_length <= 2.0 * spec.median_length

    def test_unknown_dataset_name_raises(self):
        with pytest.raises(KeyError):
            generate_paper_dataset("bogus")

    def test_case_insensitive_name(self):
        assert len(generate_paper_dataset("BTC", n=100)) == 100

    def test_weighted_generation(self):
        dataset = generate_paper_dataset("book", n=500, weighted=True, random_state=1)
        assert dataset.is_weighted
        assert dataset.weights.min() >= 1.0
        assert dataset.weights.max() <= 100.0

    def test_generation_is_deterministic_per_seed(self):
        a = generate_paper_dataset("btc", n=300, random_state=7)
        b = generate_paper_dataset("btc", n=300, random_state=7)
        np.testing.assert_array_equal(a.lefts, b.lefts)
        np.testing.assert_array_equal(a.rights, b.rights)

    def test_generate_dataset_invalid_size(self):
        with pytest.raises(ValueError):
            generate_dataset(PAPER_DATASETS["book"], n=0)

    def test_generate_uniform(self):
        dataset = generate_uniform(1000, domain=(0.0, 100.0), mean_length=5.0, random_state=0)
        assert len(dataset) == 1000
        lo, hi = dataset.domain()
        assert lo >= 0.0 and hi <= 100.0

    def test_generate_uniform_invalid_domain(self):
        with pytest.raises(ValueError):
            generate_uniform(10, domain=(5.0, 5.0))

    def test_generate_clustered(self):
        dataset = generate_clustered(500, clusters=3, random_state=0)
        assert len(dataset) == 500

    def test_generate_clustered_invalid(self):
        with pytest.raises(ValueError):
            generate_clustered(10, clusters=0)

    def test_generate_point_intervals(self):
        dataset = generate_point_intervals(200, random_state=0)
        assert np.all(dataset.lengths() == 0.0)

    def test_attach_random_weights(self):
        dataset = generate_uniform(100, random_state=0)
        weighted = attach_random_weights(dataset, low=5, high=10, random_state=1)
        assert weighted.is_weighted
        assert weighted.weights.min() >= 5
        assert weighted.weights.max() <= 10

    def test_attach_random_weights_invalid_bounds(self):
        with pytest.raises(ValueError):
            attach_random_weights(generate_uniform(10), low=10, high=5)


class TestStatistics:
    def test_compute_statistics_simple(self):
        dataset = IntervalDataset([0.0, 0.0], [2.0, 10.0])
        stats = compute_statistics(dataset)
        assert stats.cardinality == 2
        assert stats.domain_size == 10.0
        assert stats.min_length == 2.0
        assert stats.max_length == 10.0
        assert stats.mean_length == 6.0
        assert stats.as_row()["median_length"] == 6.0

    def test_compute_statistics_empty_raises(self):
        with pytest.raises(EmptyDatasetError):
            compute_statistics(IntervalDataset([], []))


class TestQueryWorkloads:
    def test_queries_lie_in_domain_with_requested_extent(self):
        dataset = generate_uniform(1000, domain=(0.0, 1000.0), random_state=0)
        workload = generate_queries(dataset, count=100, extent_fraction=0.08, random_state=1)
        assert len(workload) == 100
        lo, hi = dataset.domain()
        extent = (hi - lo) * 0.08
        for left, right in workload:
            assert lo <= left <= right <= hi + 1e-9
            assert right - left <= extent + 1e-9

    def test_workload_indexing_and_iteration(self):
        workload = generate_queries((0.0, 100.0), count=10, random_state=0)
        assert workload[0] == list(workload)[0]
        assert workload.extent_fraction == 0.08

    def test_explicit_domain_pair(self):
        workload = generate_queries((10.0, 20.0), count=5, extent_fraction=0.5, random_state=2)
        for left, right in workload:
            assert 10.0 <= left <= right <= 20.0

    def test_invalid_parameters(self):
        with pytest.raises(InvalidQueryError):
            generate_queries((0.0, 10.0), count=0)
        with pytest.raises(InvalidQueryError):
            generate_queries((0.0, 10.0), extent_fraction=0.0)
        with pytest.raises(InvalidQueryError):
            generate_queries((10.0, 10.0))

    def test_determinism(self):
        a = generate_queries((0.0, 10.0), count=5, random_state=3)
        b = generate_queries((0.0, 10.0), count=5, random_state=3)
        assert a.queries == b.queries

    def test_stabbing_queries(self):
        points = stabbing_queries((0.0, 50.0), count=20, random_state=0)
        assert len(points) == 20
        assert all(0.0 <= p <= 50.0 for p in points)

    def test_stabbing_queries_invalid_count(self):
        with pytest.raises(InvalidQueryError):
            stabbing_queries((0.0, 1.0), count=0)


class TestCsvLoader:
    def test_round_trip(self, tmp_path):
        dataset = generate_uniform(50, random_state=0)
        path = tmp_path / "intervals.csv"
        save_csv(dataset, path)
        loaded = load_csv(path, left_column="left", right_column="right", weight_column="weight")
        assert len(loaded) == 50
        np.testing.assert_allclose(loaded.lefts, dataset.lefts)
        np.testing.assert_allclose(loaded.rights, dataset.rights)

    def test_positional_columns_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        loaded = load_csv(path, left_column=0, right_column=1)
        assert len(loaded) == 2
        assert not loaded.is_weighted

    def test_limit(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("\n".join(f"{i},{i + 1}" for i in range(100)))
        assert len(load_csv(path, 0, 1, limit=10)) == 10

    def test_invalid_row_raises_by_default(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\n5.0,1.0\n")
        with pytest.raises(InvalidIntervalError):
            load_csv(path, 0, 1)

    def test_skip_invalid_rows(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("1.0,2.0\nnot,numbers\n5.0,1.0\n3.0,4.0\n")
        loaded = load_csv(path, 0, 1, skip_invalid=True)
        assert len(loaded) == 2

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(EmptyDatasetError):
            load_csv(path, 0, 1)
