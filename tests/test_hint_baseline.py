"""Tests for the HINT^m hierarchical interval index baseline."""

from __future__ import annotations

import pytest

from repro import IntervalDataset
from repro.baselines import HINT
from repro.stats import chi_square_uniformity


class TestConstruction:
    def test_default_levels(self, random_dataset):
        index = HINT(random_dataset)
        assert 1 <= index.num_levels <= 10

    def test_explicit_levels(self, random_dataset):
        assert HINT(random_dataset, num_levels=6).num_levels == 6

    def test_invalid_levels_raise(self, random_dataset):
        with pytest.raises(ValueError):
            HINT(random_dataset, num_levels=0)

    def test_partition_count_positive(self, random_dataset):
        assert HINT(random_dataset).partition_count() > 0

    def test_memory_bytes_positive(self, random_dataset):
        assert HINT(random_dataset).memory_bytes() > 0


class TestCorrectness:
    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        index = HINT(random_dataset)
        for query in make_queries(random_dataset, count=30):
            assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    @pytest.mark.parametrize("levels", [1, 3, 7, 12])
    def test_report_correct_for_any_level_count(self, random_dataset, make_queries, ground_truth, levels):
        index = HINT(random_dataset, num_levels=levels)
        for query in make_queries(random_dataset, count=10, seed=levels):
            assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_report_no_duplicates(self, random_dataset, make_queries):
        index = HINT(random_dataset)
        for query in make_queries(random_dataset, count=15, extent=0.5):
            ids = index.report(query)
            assert len(ids) == len(set(ids.tolist()))

    def test_point_intervals(self, make_random_dataset, make_queries, ground_truth):
        dataset = make_random_dataset(n=400, seed=33, kind="points")
        index = HINT(dataset)
        for query in make_queries(dataset, count=15):
            assert set(index.report(query).tolist()) == ground_truth(dataset, query)

    def test_long_intervals(self, make_random_dataset, make_queries, ground_truth):
        dataset = make_random_dataset(n=300, seed=34, kind="long")
        index = HINT(dataset)
        for query in make_queries(dataset, count=15):
            assert set(index.report(query).tolist()) == ground_truth(dataset, query)

    def test_query_covering_domain(self, random_dataset):
        index = HINT(random_dataset)
        lo, hi = random_dataset.domain()
        assert index.count((lo, hi)) == len(random_dataset)

    def test_query_outside_domain(self, random_dataset):
        index = HINT(random_dataset)
        _, hi = random_dataset.domain()
        assert index.count((hi + 10.0, hi + 20.0)) == 0

    def test_identical_intervals(self):
        dataset = IntervalDataset([5.0] * 30, [7.0] * 30)
        index = HINT(dataset)
        assert index.count((6.0, 6.5)) == 30
        assert index.count((8.0, 9.0)) == 0


class TestSampling:
    def test_samples_are_members(self, random_dataset, make_queries, ground_truth):
        index = HINT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.1)[0]
        truth = ground_truth(random_dataset, query)
        samples = index.sample(query, 200, random_state=0)
        assert set(samples.tolist()) <= truth

    def test_sampling_uniformity(self, random_dataset, make_queries, ground_truth):
        index = HINT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.12, seed=8)[0]
        truth = sorted(ground_truth(random_dataset, query))
        samples = index.sample(query, 40 * len(truth), random_state=1)
        assert not chi_square_uniformity(samples.tolist(), truth).rejects_uniformity(alpha=1e-4)

    def test_empty_result(self, random_dataset):
        index = HINT(random_dataset)
        _, hi = random_dataset.domain()
        assert index.sample((hi + 1.0, hi + 2.0), 10).shape == (0,)
