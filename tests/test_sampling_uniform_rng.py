"""Tests for the uniform-sampling helpers and the RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sampling import (
    resolve_rng,
    reservoir_sample,
    sample_indices_with_replacement,
    sample_with_replacement,
    sample_without_replacement,
    spawn_rngs,
)


class TestResolveRng:
    def test_none_returns_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = resolve_rng(42).integers(0, 1000, 10)
        b = resolve_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_existing_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert resolve_rng(rng) is rng

    def test_seed_sequence_accepted(self):
        assert isinstance(resolve_rng(np.random.SeedSequence(1)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            resolve_rng("not-a-seed")


class TestSpawnRngs:
    def test_spawn_count_and_independence(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [r.integers(0, 10**9) for r in rngs]
        assert len(set(draws)) == 3

    def test_spawn_deterministic_from_seed(self):
        a = [r.integers(0, 10**9) for r in spawn_rngs(5, 2)]
        b = [r.integers(0, 10**9) for r in spawn_rngs(5, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        rngs = spawn_rngs(np.random.default_rng(0), 2)
        assert len(rngs) == 2

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestUniformSampling:
    def test_with_replacement_length_and_membership(self):
        items = ["a", "b", "c"]
        out = sample_with_replacement(items, 10, random_state=0)
        assert len(out) == 10
        assert set(out) <= set(items)

    def test_without_replacement_distinct(self):
        items = list(range(20))
        out = sample_without_replacement(items, 10, random_state=1)
        assert len(out) == 10
        assert len(set(out)) == 10

    def test_without_replacement_caps_at_population(self):
        out = sample_without_replacement([1, 2, 3], 10, random_state=0)
        assert sorted(out) == [1, 2, 3]

    def test_without_replacement_zero(self):
        assert sample_without_replacement([1, 2], 0) == []

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            sample_with_replacement([1], -1)
        with pytest.raises(ValueError):
            sample_without_replacement([1], -1)
        with pytest.raises(ValueError):
            sample_indices_with_replacement(5, -1, resolve_rng(0))

    def test_indices_with_replacement_empty_population_raises(self):
        with pytest.raises(ValueError):
            sample_indices_with_replacement(0, 5, resolve_rng(0))

    def test_reservoir_sample_from_generator(self):
        out = reservoir_sample((i * i for i in range(1000)), 10, random_state=2)
        assert len(out) == 10
        assert all(isinstance(v, int) for v in out)

    def test_reservoir_sample_small_stream_returns_everything(self):
        assert sorted(reservoir_sample(iter([1, 2, 3]), 10)) == [1, 2, 3]

    def test_reservoir_sample_negative_raises(self):
        with pytest.raises(ValueError):
            reservoir_sample([1, 2], -1)

    def test_reservoir_sample_is_reasonably_uniform(self):
        hits = np.zeros(100)
        for seed in range(300):
            for value in reservoir_sample(range(100), 10, random_state=seed):
                hits[value] += 1
        # Every position should be selected at least once over 300 trials of 10 draws.
        assert (hits > 0).all()
