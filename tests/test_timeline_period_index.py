"""Tests for the timeline index and the period index (related-work substrates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import IntervalDataset
from repro.baselines import PeriodIndex, TimelineIndex


class TestTimelineIndex:
    def test_alive_at_matches_oracle(self, random_dataset):
        index = TimelineIndex(random_dataset)
        rng = np.random.default_rng(0)
        lo, hi = random_dataset.domain()
        for point in rng.uniform(lo, hi, 25):
            expected = set(random_dataset.overlap_indices(point, point).tolist())
            assert set(index.alive_at(float(point)).tolist()) == expected

    def test_alive_at_exact_endpoints(self):
        dataset = IntervalDataset([0.0, 5.0], [5.0, 10.0])
        index = TimelineIndex(dataset, checkpoint_every=1)
        assert set(index.alive_at(5.0).tolist()) == {0, 1}
        assert set(index.alive_at(0.0).tolist()) == {0}
        assert set(index.alive_at(10.0).tolist()) == {1}
        assert index.alive_at(11.0).shape == (0,)

    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        index = TimelineIndex(random_dataset)
        for query in make_queries(random_dataset, count=20):
            assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_report_on_long_and_point_datasets(self, make_random_dataset, make_queries, ground_truth):
        for kind in ("long", "points"):
            dataset = make_random_dataset(n=300, seed=61, kind=kind)
            index = TimelineIndex(dataset)
            for query in make_queries(dataset, count=10):
                assert set(index.report(query).tolist()) == ground_truth(dataset, query)

    def test_checkpoint_every_validation(self, random_dataset):
        with pytest.raises(ValueError):
            TimelineIndex(random_dataset, checkpoint_every=0)

    def test_checkpoint_count_and_memory(self, random_dataset):
        dense = TimelineIndex(random_dataset, checkpoint_every=10)
        sparse = TimelineIndex(random_dataset, checkpoint_every=1000)
        assert dense.checkpoint_count > sparse.checkpoint_count
        assert dense.memory_bytes() > 0
        assert dense.checkpoint_every == 10

    def test_count_defaults_to_report(self, random_dataset, make_queries):
        index = TimelineIndex(random_dataset)
        for query in make_queries(random_dataset, count=5):
            assert index.count(query) == random_dataset.overlap_count(*query)


class TestPeriodIndex:
    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        index = PeriodIndex(random_dataset)
        for query in make_queries(random_dataset, count=20):
            assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_report_various_grid_shapes(self, random_dataset, make_queries, ground_truth):
        for bucket_count, levels in ((1, 1), (16, 2), (200, 6)):
            index = PeriodIndex(random_dataset, bucket_count=bucket_count, levels=levels)
            assert index.bucket_count == bucket_count
            assert index.levels == levels
            for query in make_queries(random_dataset, count=5, seed=bucket_count):
                assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_stab(self, random_dataset):
        index = PeriodIndex(random_dataset)
        rng = np.random.default_rng(1)
        lo, hi = random_dataset.domain()
        for point in rng.uniform(lo, hi, 10):
            expected = set(random_dataset.overlap_indices(point, point).tolist())
            assert set(index.stab(float(point)).tolist()) == expected

    def test_query_outside_domain(self, random_dataset):
        index = PeriodIndex(random_dataset)
        _, hi = random_dataset.domain()
        assert index.report((hi + 10.0, hi + 20.0)).shape == (0,) or set(
            index.report((hi + 10.0, hi + 20.0)).tolist()
        ) == set()

    def test_parameter_validation(self, random_dataset):
        with pytest.raises(ValueError):
            PeriodIndex(random_dataset, bucket_count=0)
        with pytest.raises(ValueError):
            PeriodIndex(random_dataset, levels=0)

    def test_memory_bytes_positive(self, random_dataset):
        assert PeriodIndex(random_dataset).memory_bytes() > 0

    def test_point_interval_dataset(self, make_random_dataset, make_queries, ground_truth):
        dataset = make_random_dataset(n=200, seed=62, kind="points")
        index = PeriodIndex(dataset)
        for query in make_queries(dataset, count=10):
            assert set(index.report(query).tolist()) == ground_truth(dataset, query)
