"""Unit and property tests for the Interval value type and interval algebra."""

from __future__ import annotations


import pytest
from hypothesis import given, strategies as st

from repro import Interval, InvalidIntervalError, InvalidWeightError
from repro.core.interval import (
    contains_point,
    covers,
    intersection_length,
    overlaps,
    union_span,
    validate_endpoints,
)

finite = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False)


def make_interval(a: float, b: float) -> Interval:
    return Interval(min(a, b), max(a, b))


class TestConstruction:
    def test_basic_construction(self):
        x = Interval(1.0, 5.0)
        assert x.left == 1.0
        assert x.right == 5.0
        assert x.weight == 1.0
        assert x.data is None

    def test_point_interval_is_allowed(self):
        x = Interval(3.0, 3.0)
        assert x.length == 0.0
        assert x.contains_point(3.0)

    def test_inverted_endpoints_raise(self):
        with pytest.raises(InvalidIntervalError):
            Interval(5.0, 1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_endpoints_raise(self, bad):
        with pytest.raises(InvalidIntervalError):
            Interval(bad, 1.0)
        with pytest.raises(InvalidIntervalError):
            Interval(0.0, bad)

    def test_negative_weight_raises(self):
        with pytest.raises(InvalidWeightError):
            Interval(0.0, 1.0, weight=-1.0)

    def test_nan_weight_raises(self):
        with pytest.raises(InvalidWeightError):
            Interval(0.0, 1.0, weight=float("nan"))

    def test_payload_does_not_affect_equality(self):
        assert Interval(0.0, 1.0, data="a") == Interval(0.0, 1.0, data="b")

    def test_validate_endpoints_direct(self):
        validate_endpoints(0.0, 0.0)
        with pytest.raises(InvalidIntervalError):
            validate_endpoints(2.0, 1.0)


class TestGeometry:
    def test_length_and_midpoint(self):
        x = Interval(2.0, 6.0)
        assert x.length == 4.0
        assert x.midpoint == 4.0

    def test_overlaps_touching_endpoints(self):
        assert Interval(0.0, 5.0).overlaps(Interval(5.0, 9.0))

    def test_overlaps_disjoint(self):
        assert not Interval(0.0, 1.0).overlaps(Interval(2.0, 3.0))

    def test_covers(self):
        assert Interval(0.0, 10.0).covers(Interval(2.0, 3.0))
        assert not Interval(2.0, 3.0).covers(Interval(0.0, 10.0))

    def test_intersection_length(self):
        assert Interval(0.0, 5.0).intersection_length(Interval(3.0, 9.0)) == 2.0
        assert Interval(0.0, 1.0).intersection_length(Interval(2.0, 3.0)) == 0.0

    def test_shifted(self):
        x = Interval(1.0, 2.0, weight=3.0, data="t")
        y = x.shifted(10.0)
        assert (y.left, y.right, y.weight, y.data) == (11.0, 12.0, 3.0, "t")

    def test_scaled(self):
        x = Interval(2.0, 4.0)
        y = x.scaled(2.0, origin=0.0)
        assert (y.left, y.right) == (4.0, 8.0)

    def test_scaled_negative_factor_raises(self):
        with pytest.raises(InvalidIntervalError):
            Interval(0.0, 1.0).scaled(-1.0)

    def test_with_weight(self):
        assert Interval(0.0, 1.0).with_weight(5.0).weight == 5.0

    def test_as_tuple_and_iter(self):
        x = Interval(1.5, 2.5)
        assert x.as_tuple() == (1.5, 2.5)
        assert tuple(x) == (1.5, 2.5)
        assert x.as_point() == (1.5, 2.5)

    def test_union_span(self):
        span = union_span([Interval(3.0, 4.0), Interval(1.0, 2.0), Interval(3.5, 9.0)])
        assert (span.left, span.right) == (1.0, 9.0)

    def test_union_span_empty_raises(self):
        with pytest.raises(InvalidIntervalError):
            union_span([])


class TestFreeFunctions:
    def test_overlaps_function_matches_method(self):
        assert overlaps(0.0, 2.0, 1.0, 3.0)
        assert not overlaps(0.0, 1.0, 1.5, 3.0)

    def test_contains_point(self):
        assert contains_point(0.0, 2.0, 1.0)
        assert contains_point(0.0, 2.0, 0.0)
        assert not contains_point(0.0, 2.0, 2.1)

    def test_covers_function(self):
        assert covers(0.0, 10.0, 1.0, 2.0)
        assert not covers(1.0, 2.0, 0.0, 10.0)

    def test_intersection_length_function(self):
        assert intersection_length(0.0, 2.0, 1.0, 4.0) == 1.0


class TestProperties:
    @given(finite, finite, finite, finite)
    def test_overlap_is_symmetric(self, a, b, c, d):
        x = make_interval(a, b)
        y = make_interval(c, d)
        assert x.overlaps(y) == y.overlaps(x)

    @given(finite, finite)
    def test_interval_overlaps_itself(self, a, b):
        x = make_interval(a, b)
        assert x.overlaps(x)

    @given(finite, finite, finite, finite)
    def test_overlap_iff_positive_or_touching_intersection(self, a, b, c, d):
        x = make_interval(a, b)
        y = make_interval(c, d)
        inter = x.intersection_length(y)
        if inter > 0:
            assert x.overlaps(y)
        if not x.overlaps(y):
            assert inter == 0.0

    @given(finite, finite, finite)
    def test_contains_point_consistent_with_point_interval_overlap(self, a, b, p):
        x = make_interval(a, b)
        assert x.contains_point(p) == x.overlaps(Interval(p, p))

    @given(st.lists(st.tuples(finite, finite), min_size=1, max_size=20))
    def test_union_span_covers_every_member(self, pairs):
        intervals = [make_interval(a, b) for a, b in pairs]
        span = union_span(intervals)
        assert all(span.covers(x) for x in intervals)
