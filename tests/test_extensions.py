"""Tests for the extension features beyond the paper's core algorithms.

Covers sampling without replacement (``sample_distinct``) and the AIT-V
partition-strategy ablation switch (pair sort vs random bucketing).
"""

from __future__ import annotations

import pytest

from repro import AIT, AITV, AWIT, InvalidQueryError


class TestSampleDistinct:
    def test_returns_distinct_members(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.15)[0]
        truth = ground_truth(random_dataset, query)
        distinct = tree.sample_distinct(query, 20, random_state=0)
        assert len(distinct) == min(20, len(truth))
        assert len(set(distinct.tolist())) == len(distinct)
        assert set(distinct.tolist()) <= truth

    def test_requesting_more_than_population_returns_everything(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.02)[0]
        truth = ground_truth(random_dataset, query)
        distinct = tree.sample_distinct(query, len(truth) + 50, random_state=1)
        assert set(distinct.tolist()) == truth

    def test_empty_result_returns_empty(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        assert tree.sample_distinct((hi + 5.0, hi + 6.0), 10, random_state=0).shape == (0,)

    def test_zero_samples(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        assert tree.sample_distinct(query, 0).shape == (0,)

    def test_negative_raises(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        with pytest.raises(InvalidQueryError):
            tree.sample_distinct(query, -1)

    def test_works_on_ait_v_and_awit(self, weighted_dataset, make_queries, ground_truth):
        query = make_queries(weighted_dataset, count=1, extent=0.1)[0]
        truth = ground_truth(weighted_dataset, query)
        for index in (AITV(weighted_dataset), AWIT(weighted_dataset)):
            distinct = index.sample_distinct(query, 15, random_state=2)
            assert len(set(distinct.tolist())) == len(distinct) == min(15, len(truth))
            assert set(distinct.tolist()) <= truth

    def test_every_subset_reachable_over_many_seeds(self, make_random_dataset):
        dataset = make_random_dataset(n=30, seed=3, domain=10.0, kind="long")
        tree = AIT(dataset)
        lo, hi = dataset.domain()
        seen: set[int] = set()
        for seed in range(40):
            seen.update(tree.sample_distinct((lo, hi), 5, random_state=seed).tolist())
        assert seen == set(range(len(dataset)))


class TestPartitionStrategies:
    def test_random_partition_is_still_exact(self, random_dataset, make_queries, ground_truth):
        index = AITV(random_dataset, partition="random", partition_random_state=0)
        assert index.partition_strategy == "random"
        for query in make_queries(random_dataset, count=15):
            truth = ground_truth(random_dataset, query)
            assert set(index.report(query).tolist()) == truth
            samples = index.sample(query, 100, random_state=1)
            if truth:
                assert set(samples.tolist()) <= truth

    def test_unknown_partition_raises(self, random_dataset):
        with pytest.raises(ValueError):
            AITV(random_dataset, partition="zorder")

    def test_pair_sort_needs_no_more_draws_than_random(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=3000, seed=5)
        queries = make_queries(dataset, count=5, extent=0.1)
        pair_sorted = AITV(dataset, partition="pair_sort")
        randomised = AITV(dataset, partition="random", partition_random_state=1)

        def draws(index):
            total = 0
            for query in queries:
                index.sample(query, 500, random_state=2)
                total += index.last_candidate_draws
            return total

        assert draws(pair_sorted) <= draws(randomised)

    def test_default_strategy_is_pair_sort(self, random_dataset):
        assert AITV(random_dataset).partition_strategy == "pair_sort"
