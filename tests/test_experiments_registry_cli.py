"""Tests for the experiment registry (coverage of every paper table/figure) and the CLI."""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENTS, ExperimentConfig, list_experiments, run_experiment
from repro.experiments.cli import build_parser, main

TINY = ExperimentConfig.smoke().with_overrides(
    datasets=("btc",),
    dataset_size=2500,
    query_count=4,
    sample_size=60,
    update_count=15,
    extent_sweep=(0.05, 0.2),
    sample_size_sweep=(20, 60),
    dataset_size_fractions=(0.5, 1.0),
)

#: Every table and figure of the paper's evaluation section must be registered.
PAPER_IDS = {
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    "table9", "table10", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
}

#: Repo-specific experiments registered alongside the paper's tables/figures.
EXTRA_IDS = {
    "throughput",
    "service_throughput",
    "update_throughput",
    "gateway_latency",
    "build_throughput",
    "recovery",
    "parallel_scaling",
    "kernel_throughput",
    "serving_slo",
}

EXPECTED_IDS = PAPER_IDS | EXTRA_IDS


class TestRegistry:
    def test_every_paper_table_and_figure_is_registered(self):
        assert set(list_experiments()) == EXPECTED_IDS

    def test_entries_have_titles(self):
        assert all(entry.title for entry in EXPERIMENTS.values())

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("table99", TINY)

    @pytest.mark.parametrize("experiment_id", ["table2", "table5", "table10"])
    def test_representative_experiments_run_end_to_end(self, experiment_id):
        result = run_experiment(experiment_id, TINY)
        assert result.experiment_id == experiment_id
        assert result.rows
        assert result.paper_reference  # every experiment carries the published values
        assert "btc" in result.columns or any("btc" in str(row.values()) for row in result.rows)

    def test_service_throughput_experiment_runs_end_to_end(self):
        result = run_experiment("service_throughput", TINY)
        assert result.experiment_id == "service_throughput"
        shard_counts = {row["shards"] for row in result.rows}
        assert 0 in shard_counts and len(shard_counts) >= 2  # baseline + sweep
        assert {row["executor"] for row in result.rows} >= {"none", "serial", "threads"}
        assert all(row["qps"] > 0 for row in result.rows)

    def test_update_throughput_experiment_runs_end_to_end(self):
        result = run_experiment("update_throughput", TINY)
        assert result.experiment_id == "update_throughput"
        ratios = {row["write_ratio"] for row in result.rows}
        assert 0.0 in ratios and len(ratios) >= 2  # read-only baseline + sweep
        assert {row["shards"] for row in result.rows} >= {1, 2}
        assert all(row["reads_per_sec"] > 0 for row in result.rows)
        read_only = [row for row in result.rows if row["write_ratio"] == 0.0]
        assert all(row["writes_per_sec"] == 0.0 for row in read_only)

    def test_gateway_latency_experiment_runs_end_to_end(self):
        result = run_experiment("gateway_latency", TINY)
        assert result.experiment_id == "gateway_latency"
        modes = {row["mode"] for row in result.rows}
        assert modes == {"scalar", "gateway"}
        assert {row["operation"] for row in result.rows} == {"count", "sample"}
        assert len({row["clients"] for row in result.rows}) >= 2
        assert all(row["requests"] > 0 and row["rps"] > 0 for row in result.rows)
        # Percentiles must be ordered within every row (p50 <= p95 <= p99).
        for row in result.rows:
            assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"]
        # Gateway rows carry the window they were measured at; scalar rows 0.
        assert all(
            row["window_ms"] > 0 for row in result.rows if row["mode"] == "gateway"
        )

    def test_build_throughput_experiment_runs_end_to_end(self):
        result = run_experiment("build_throughput", TINY)
        assert result.experiment_id == "build_throughput"
        assert {row["dataset"] for row in result.rows} == {"btc"}
        assert {row["n"] for row in result.rows} == {1250, 2500}
        for row in result.rows:
            # Outputs are asserted bit-identical inside the experiment, so a
            # returned row is itself evidence the two builders agreed.
            assert row["tree_seconds"] > 0 and row["columnar_seconds"] > 0
            assert row["speedup"] > 0

    def test_recovery_experiment_runs_end_to_end(self):
        result = run_experiment("recovery", TINY)
        assert result.experiment_id == "recovery"
        assert {row["shards"] for row in result.rows} == {1, 4}
        for row in result.rows:
            # Recovery must reproduce the pre-shutdown engine exactly; the
            # timing columns are only required to be well-formed at tiny sizes.
            assert row["consistent"] is True
            assert row["rebuild_s"] > 0 and row["open_s"] > 0
            assert row["wal_ops"] > 0 and row["wal_ops_per_sec"] > 0

    def test_update_experiment_shows_batch_speedup(self):
        result = run_experiment("table7", TINY)
        insertion = result.row_by(operation="Insertion")["btc"]
        batch = result.row_by(operation="Batch insertion")["btc"]
        assert batch <= insertion

    def test_counting_experiment_favours_ait(self):
        result = run_experiment("table10", TINY)
        ait = result.row_by(algorithm="ait")["btc"]
        hint = result.row_by(algorithm="hint")["btc"]
        assert ait < hint


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["table5"])
        assert args.experiment == "table5"
        assert args.preset == "default"

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == EXPECTED_IDS

    def test_no_arguments_lists_experiments(self, capsys):
        assert main([]) == 0
        assert "table5" in capsys.readouterr().out

    def test_run_single_experiment_with_overrides(self, capsys, tmp_path):
        code = main([
            "table2",
            "--preset", "smoke",
            "--dataset-size", "1500",
            "--queries", "3",
            "--samples", "20",
            "--seed", "1",
            "--datasets", "btc",
            "--csv-dir", str(tmp_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "table2" in out
        assert (tmp_path / "table2.csv").exists()

    def test_invalid_experiment_id_raises(self):
        with pytest.raises(KeyError):
            main(["tableXYZ", "--preset", "smoke"])
