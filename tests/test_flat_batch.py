"""Batch/scalar equivalence of the flat (structure-of-arrays) query engine.

The FlatAIT engine must be an *observationally exact* replacement for the
pointer-based scalar path: ``count_many`` / ``report_many`` match per-query
``count`` / ``report`` element for element (including pooled inserts and
post-delete state), and ``sample_many`` draws from the identical per-draw
distribution (checked with the chi-square machinery of ``stats/uniformity``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, AITV, AWIT, FlatAIT, IntervalDataset
from repro.baselines import ExhaustiveScan
from repro.core.errors import EmptyResultError, InvalidQueryError
from repro.stats import chi_square_uniformity, chi_square_weighted


@pytest.fixture
def dataset(make_random_dataset):
    return make_random_dataset(n=800, seed=3)


@pytest.fixture
def weighted_dataset(make_random_dataset):
    return make_random_dataset(n=400, seed=4, weighted=True)


@pytest.fixture
def queries(dataset, make_queries):
    batch = []
    for extent in (0.01, 0.05, 0.2, 0.8):
        batch.extend(make_queries(dataset, count=15, extent=extent, seed=int(extent * 1000)))
    lo, hi = dataset.domain()
    batch.append((lo - 5.0, hi + 5.0))   # covers everything
    batch.append((hi + 10.0, hi + 20.0))  # empty
    batch.append((lo, lo))                # point query
    return batch


class TestCountReportEquivalence:
    def test_count_many_matches_scalar(self, dataset, queries):
        tree = AIT(dataset)
        batch = tree.count_many(queries)
        assert batch.dtype == np.int64
        assert batch.tolist() == [tree.count(q) for q in queries]

    def test_count_many_matches_oracle(self, dataset, queries):
        tree = AIT(dataset)
        oracle = ExhaustiveScan(dataset)
        assert np.array_equal(tree.count_many(queries), oracle.count_many(queries))

    def test_report_many_matches_scalar_exactly(self, dataset, queries):
        tree = AIT(dataset)
        batch = tree.report_many(queries)
        assert len(batch) == len(queries)
        for chunk, query in zip(batch, queries):
            assert np.array_equal(chunk, tree.report(query))

    def test_accepts_ndarray_input(self, dataset, queries):
        tree = AIT(dataset)
        arr = np.asarray(queries, dtype=np.float64)
        assert np.array_equal(tree.count_many(arr), tree.count_many(queries))

    def test_empty_batch(self, dataset):
        tree = AIT(dataset)
        assert tree.count_many([]).shape == (0,)
        assert tree.report_many([]) == []
        assert tree.sample_many([], 5) == []

    def test_invalid_query_in_batch_raises(self, dataset):
        tree = AIT(dataset)
        with pytest.raises(InvalidQueryError):
            tree.count_many([(0.0, 1.0), (5.0, 1.0)])
        with pytest.raises(InvalidQueryError):
            tree.count_many(np.asarray([[0.0, 1.0], [5.0, 1.0]]))

    def test_flat_scalar_paths_match(self, dataset, queries):
        tree = AIT(dataset)
        engine = tree.flat()
        for query in queries:
            assert engine.count(query) == tree.count(query)
            assert np.array_equal(engine.report(query), tree.report(query))

    def test_flat_collect_ranges_matches_records(self, dataset, queries):
        tree = AIT(dataset)
        engine = tree.flat()
        for query in queries:
            glo, ghi, _, weight = engine.collect_ranges(query)
            records = tree.collect_records(query)
            assert glo.shape[0] == len(records)
            assert (ghi - glo + 1).tolist() == [rec.count for rec in records]
            assert np.allclose(weight, [rec.weight for rec in records])

    def test_flat_scalar_sample_stays_in_result_set(self, dataset, queries):
        tree = AIT(dataset)
        engine = tree.flat()
        for query in queries:
            truth = set(tree.report(query).tolist())
            ids = engine.sample(query, 50, random_state=3)
            if truth:
                assert ids.shape[0] == 50 and set(ids.tolist()) <= truth
            else:
                assert ids.shape[0] == 0
        with pytest.raises(EmptyResultError):
            lo, hi = dataset.domain()
            engine.sample((hi + 10.0, hi + 20.0), 5, on_empty="raise")

    @pytest.mark.parametrize("n_records", [1, 2, 5])
    def test_flat_scalar_sample_distribution_per_record_branch(self, n_records):
        # One dataset per branch of the record-selection fast path: direct
        # (1 record), bernoulli (2 records), cumulative inverse-CDF (>2).
        if n_records == 1:
            pairs = [(0.0, 100.0), (1.0, 99.0), (2.0, 98.0)]
            query = (40.0, 60.0)
        elif n_records == 2:
            pairs = [(0.0, 10.0), (1.0, 9.0), (30.0, 40.0), (31.0, 39.0)]
            query = (5.0, 35.0)
        else:
            rng = np.random.default_rng(29)
            lefts = rng.uniform(0.0, 100.0, 64)
            pairs = [(float(l), float(l + e)) for l, e in zip(lefts, rng.exponential(10.0, 64))]
            query = (20.0, 45.0)
        tree = AIT(IntervalDataset.from_pairs(pairs))
        engine = tree.flat()
        if n_records <= 2:
            assert len(tree.collect_records(query)) == n_records
        else:
            assert len(tree.collect_records(query)) > 2
        population = tree.report(query).tolist()
        ids = engine.sample(query, 4000, random_state=31)
        result = chi_square_uniformity(ids.tolist(), population)
        assert not result.rejects_uniformity(alpha=1e-4), result

    def test_flat_scalar_sample_weighted_distribution(self, weighted_dataset, make_queries):
        tree = AWIT(weighted_dataset)
        engine = tree.flat()
        for query in make_queries(weighted_dataset, count=3, extent=0.08, seed=33):
            population = tree.report(query)
            if population.shape[0] < 2 or population.shape[0] > 400:
                continue
            ids = engine.sample(query, 4000, random_state=37)
            weights = tree.weights_of(population)
            result = chi_square_weighted(ids.tolist(), population.tolist(), weights.tolist())
            assert not result.rejects_uniformity(alpha=1e-4), result

    def test_awit_total_weight_many(self, weighted_dataset, make_queries):
        tree = AWIT(weighted_dataset)
        batch = make_queries(weighted_dataset, count=30, extent=0.1, seed=9)
        totals = tree.total_weight_many(batch)
        expected = np.asarray([tree.total_weight(q) for q in batch])
        assert np.allclose(totals, expected)

    def test_aitv_batch_matches_scalar(self, dataset, queries):
        index = AITV(dataset)
        counts = index.count_many(queries)
        reports = index.report_many(queries)
        for i, query in enumerate(queries):
            assert counts[i] == index.count(query)
            assert np.array_equal(reports[i], index.report(query))


class TestBatchWithUpdates:
    def _updated_tree(self):
        data = IntervalDataset.from_pairs([(i, i + 12.0) for i in range(0, 600, 3)])
        tree = AIT(data)
        for k in range(25):  # pooled inserts (stay below the pool capacity)
            tree.insert((k * 7.0, k * 7.0 + 4.0))
        for victim in (2, 30, 77):
            assert tree.delete(victim)
        return tree

    def test_count_report_with_pool_and_deletes(self, make_queries):
        tree = self._updated_tree()
        assert tree.pending_pool_size > 0
        queries = [(0.0, 50.0), (100.0, 180.0), (333.3, 444.4), (900.0, 999.0)]
        counts = tree.count_many(queries)
        reports = tree.report_many(queries)
        for i, query in enumerate(queries):
            assert counts[i] == tree.count(query)
            assert np.array_equal(reports[i], tree.report(query))

    def test_sample_many_with_pool_stays_in_result_set(self):
        tree = self._updated_tree()
        queries = [(0.0, 50.0), (100.0, 180.0)]
        samples = tree.sample_many(queries, 200, random_state=0)
        for ids, query in zip(samples, queries):
            assert ids.shape[0] == 200
            assert set(ids.tolist()) <= set(tree.report(query).tolist())

    def test_flat_snapshot_invalidated_by_updates(self):
        tree = self._updated_tree()
        before = tree.flat()
        assert tree.flat() is before  # cached while structure is unchanged
        tree.insert((5.0, 6.0), immediate=True)
        after = tree.flat()
        assert after is not before
        assert tree.count_many([(0.0, 600.0)])[0] == tree.count((0.0, 600.0))

    def test_flush_pool_then_fully_vectorised(self):
        tree = self._updated_tree()
        tree.flush_pool()
        assert tree.pending_pool_size == 0
        queries = [(0.0, 50.0), (100.0, 180.0)]
        counts = tree.count_many(queries)
        for i, query in enumerate(queries):
            assert counts[i] == tree.count(query)


class TestSampleManyDistribution:
    def test_sample_many_is_uniform_per_query(self, dataset, make_queries):
        tree = AIT(dataset)
        queries = make_queries(dataset, count=5, extent=0.05, seed=11)
        samples = tree.sample_many(queries, 4000, random_state=42)
        checked = 0
        for ids, query in zip(samples, queries):
            population = tree.report(query)
            if population.shape[0] < 2 or population.shape[0] > 400:
                continue
            result = chi_square_uniformity(ids.tolist(), population.tolist())
            assert not result.rejects_uniformity(alpha=1e-4), (query, result)
            checked += 1
        assert checked > 0

    def test_sample_many_weighted_distribution(self, weighted_dataset, make_queries):
        tree = AWIT(weighted_dataset)
        queries = make_queries(weighted_dataset, count=4, extent=0.08, seed=12)
        samples = tree.sample_many(queries, 4000, random_state=7)
        checked = 0
        for ids, query in zip(samples, queries):
            population = tree.report(query)
            if population.shape[0] < 2 or population.shape[0] > 400:
                continue
            weights = tree.weights_of(population)
            result = chi_square_weighted(ids.tolist(), population.tolist(), weights.tolist())
            assert not result.rejects_uniformity(alpha=1e-4), (query, result)
            checked += 1
        assert checked > 0

    def test_sample_many_zero_weight_query_with_widest_record_set(self):
        # Regression: a zero-total-weight (unanswerable) query whose record
        # set is wider than any answerable query's must not crash the dense
        # multinomial construction; it yields an empty row like the scalar
        # path.
        data = IntervalDataset.from_pairs(
            [(float(i), float(i) + 1.5) for i in range(40)] + [(100.0, 101.0), (100.5, 102.0)],
            weights=[0.0] * 40 + [1.0, 2.0],
        )
        tree = AWIT(data)
        queries = [(0.0, 39.9), (100.0, 101.0)]
        samples = tree.sample_many(queries, 5, random_state=0)
        assert samples[0].shape[0] == 0  # zero weight -> empty, like scalar
        assert np.array_equal(samples[0], tree.sample(queries[0], 5, random_state=0))
        assert samples[1].shape[0] == 5
        assert set(samples[1].tolist()) <= {40, 41}

    def test_sample_many_invalid_on_empty_rejected_with_pool(self, dataset):
        # on_empty validation must not depend on internal pool state.
        tree = AIT(IntervalDataset.from_pairs([(0.0, 10.0), (5.0, 15.0)]))
        tree.insert((1.0, 2.0))  # pooled: scalar fallback path
        with pytest.raises(ValueError):
            tree.sample_many([(0.0, 10.0)], 5, on_empty="bogus")

    def test_sample_many_empty_query_behaviour(self, dataset):
        tree = AIT(dataset)
        _, hi = dataset.domain()
        queries = [(hi + 10.0, hi + 20.0), (hi + 30.0, hi + 40.0)]
        samples = tree.sample_many(queries, 50)
        assert all(ids.shape[0] == 0 for ids in samples)
        with pytest.raises(EmptyResultError):
            tree.sample_many(queries, 50, on_empty="raise")
        with pytest.raises(ValueError):
            tree.sample_many(queries, 50, on_empty="bogus")

    def test_sample_many_positionally_unbiased(self, make_random_dataset):
        # Draws are generated grouped by node record; the engine must shuffle
        # each row so that any prefix slice (ids[:k]) is an unbiased
        # subsample, like the scalar path.  Regression test: check that the
        # *first* draw is uniform over the population across many seeds.
        dataset = make_random_dataset(n=200, seed=17)
        tree = AIT(dataset)
        lo, hi = dataset.domain()
        query = (lo + (hi - lo) * 0.25, lo + (hi - lo) * 0.6)
        assert len(tree.collect_records(query)) >= 2
        population = np.sort(tree.report(query))
        lower = sum(
            int(np.searchsorted(population, tree.sample_many([query], 2, random_state=seed)[0][0])
                < population.shape[0] / 2)
            for seed in range(300)
        )
        # Binomial(300, 0.5): +/- 5 sigma ~ [106, 194].
        assert 100 <= lower <= 200, lower

    def test_sample_many_zero_sample_size(self, dataset, make_queries):
        tree = AIT(dataset)
        queries = make_queries(dataset, count=3, extent=0.1, seed=13)
        samples = tree.sample_many(queries, 0, random_state=1)
        assert all(ids.shape[0] == 0 for ids in samples)

    def test_sample_many_deterministic_with_seed(self, dataset, make_queries):
        tree = AIT(dataset)
        queries = make_queries(dataset, count=4, extent=0.1, seed=14)
        first = tree.sample_many(queries, 100, random_state=5)
        second = tree.sample_many(queries, 100, random_state=5)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_baseline_default_sample_many(self, dataset, make_queries):
        oracle = ExhaustiveScan(dataset)
        queries = make_queries(dataset, count=3, extent=0.1, seed=15)
        samples = oracle.sample_many(queries, 64, random_state=3)
        for ids, query in zip(samples, queries):
            truth = set(oracle.report(query).tolist())
            if truth:
                assert ids.shape[0] == 64
                assert set(ids.tolist()) <= truth


class TestFlatEngineInternals:
    def test_from_tree_roundtrip_node_count(self, dataset):
        tree = AIT(dataset)
        engine = FlatAIT.from_tree(tree)
        assert engine.node_count == tree.node_count()
        assert not engine.is_weighted
        assert engine.nbytes() > 0

    def test_weighted_snapshot(self, weighted_dataset):
        tree = AWIT(weighted_dataset)
        assert tree.flat().is_weighted

    def test_empty_tree(self):
        data = IntervalDataset.from_pairs([(0.0, 1.0)])
        tree = AIT(data)
        assert tree.delete(0)
        engine = tree.flat()
        assert engine.node_count == 0
        assert tree.count_many([(0.0, 2.0)]).tolist() == [0]
        assert tree.report_many([(0.0, 2.0)])[0].shape[0] == 0
        assert tree.sample_many([(0.0, 2.0)], 5)[0].shape[0] == 0

    def test_single_record_fast_path_matches_distribution(self, make_random_dataset):
        # A query strictly inside one stab list exercises the no-alias path.
        data = IntervalDataset.from_pairs([(0.0, 100.0), (1.0, 99.0), (2.0, 98.0)])
        tree = AIT(data)
        records = tree.collect_records((40.0, 60.0))
        assert len(records) == 1
        ids = tree.sample((40.0, 60.0), 3000, random_state=21)
        assert ids.shape[0] == 3000
        result = chi_square_uniformity(ids.tolist(), [0, 1, 2])
        assert not result.rejects_uniformity(alpha=1e-4)
