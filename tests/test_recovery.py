"""End-to-end durability tests: engine snapshots, WAL replay, epoch fallback."""

from __future__ import annotations

import os
import struct
import zlib

import numpy as np
import pytest

from repro import IntervalDataset, ShardedEngine, SnapshotCorruptError
from repro.persist import DeltaLog, flip_byte, snapshot_epochs, truncate_file
from repro.persist.snapshot import read_header
from repro.persist.wal import HEADER_SIZE as WAL_HEADER_SIZE


def _queries(count=40, seed=2, domain=1000.0, extent=60.0):
    rng = np.random.default_rng(seed)
    lefts = rng.uniform(0.0, domain - extent, count)
    return np.stack((lefts, lefts + extent), axis=1)


def _engine(dataset, tmp_path=None, **kwargs):
    engine = ShardedEngine(dataset, num_shards=kwargs.pop("num_shards", 4), **kwargs)
    engine.refresh()
    return engine


@pytest.fixture
def dataset(make_random_dataset) -> IntervalDataset:
    return make_random_dataset(800, seed=21)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("policy", ["round_robin", "range"])
    def test_reopen_matches_original(self, tmp_path, dataset, policy):
        directory = str(tmp_path / "snap")
        queries = _queries()
        with _engine(dataset, policy=policy) as engine:
            want_counts = engine.count_many(queries)
            want_size = engine.size
            epoch = engine.save_snapshot(directory)
            assert epoch == 1
            assert engine.snapshot_dir == directory and engine.snapshot_epoch == 1

        with ShardedEngine.open(directory) as restored:
            assert restored.size == want_size
            assert restored.policy == policy
            np.testing.assert_array_equal(restored.count_many(queries), want_counts)
            ids = restored.sample_many(queries[:3], 32, random_state=7)
            assert all(len(s) == 32 for s in ids)

    @pytest.mark.parametrize("mmap", [True, False])
    def test_mmap_and_eager_loads_agree(self, tmp_path, dataset, mmap):
        directory = str(tmp_path / "snap")
        queries = _queries()
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)
            want = engine.count_many(queries)
        with ShardedEngine.open(directory, mmap=mmap) as restored:
            np.testing.assert_array_equal(restored.count_many(queries), want)

    def test_weighted_engine_round_trip(self, tmp_path, make_random_dataset):
        data = make_random_dataset(500, seed=13, weighted=True)
        directory = str(tmp_path / "wsnap")
        queries = _queries()
        with _engine(data, num_shards=3) as engine:
            engine.save_snapshot(directory)
            want = engine.total_weight_many(queries)
        with ShardedEngine.open(directory) as restored:
            assert restored.is_weighted
            np.testing.assert_allclose(restored.total_weight_many(queries), want)

    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises((SnapshotCorruptError, FileNotFoundError)):
            ShardedEngine.open(str(tmp_path / "nowhere"))


class TestWALReplay:
    def test_writes_after_snapshot_survive_reopen(self, tmp_path, dataset):
        directory = str(tmp_path / "wal")
        queries = _queries()

        with _engine(dataset) as engine:
            engine.save_snapshot(directory)
            rng = np.random.default_rng(31)
            lefts = rng.uniform(0.0, 900.0, 120)
            rights = lefts + rng.exponential(30.0, 120)
            new_ids = engine.insert_many(lefts, rights)
            victims = np.concatenate((new_ids[:10], np.arange(5, dtype=np.int64)))
            engine.delete_many(victims)
            engine.sync_wal()
            want_counts = engine.count_many(queries)
            want_size = engine.size

        # no snapshot after the writes: they must come back via WAL replay
        with ShardedEngine.open(directory) as restored:
            assert restored.size == want_size
            np.testing.assert_array_equal(restored.count_many(queries), want_counts)
            # deleted ids stay deleted; surviving new ids are queryable
            assert restored.delete_many(victims).sum() == 0
            assert restored.shard_of(int(new_ids[-1])) >= 0

    def test_wal_records_hit_disk_before_refresh(self, tmp_path, dataset):
        directory = str(tmp_path / "ack")
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)
            engine.insert_many([100.0, 200.0], [110.0, 210.0])
            engine.sync_wal()
            # the batch is journaled on disk even though refresh() never ran
            logged = 0
            for shard in engine._shards:
                _, records, _ = DeltaLog.scan(shard.wal.path)
                logged += sum(len(r[1]) for r in records if r[0] == "insert_many")
            assert logged == 2

    def test_reopened_engine_continues_id_assignment(self, tmp_path, dataset):
        directory = str(tmp_path / "ids")
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)
            first = engine.insert_many([1.0], [2.0])
            engine.sync_wal()
        with ShardedEngine.open(directory) as restored:
            second = restored.insert_many([3.0], [4.0])
            assert int(second[0]) == int(first[0]) + 1
            # round-robin invariant: cursor tracks the id counter
            assert restored._rr_cursor == int(restored._next_global) % restored.num_shards

    def test_snapshot_rotates_and_truncates_wal(self, tmp_path, dataset):
        directory = str(tmp_path / "rot")
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)
            engine.insert_many([1.0, 2.0], [3.0, 4.0])
            engine.sync_wal()
            before = sum(
                len(DeltaLog.scan(s.wal.path)[1]) for s in engine._shards
            )
            assert before >= 1
            second = engine.save_snapshot(directory)
            assert second == 2
            # rotated epoch-2 logs start empty: the snapshot folded the writes
            after = sum(len(DeltaLog.scan(s.wal.path)[1]) for s in engine._shards)
            assert after == 0
            assert all(s.wal.epoch == 2 for s in engine._shards)

    def test_old_epochs_garbage_collected(self, tmp_path, dataset):
        directory = str(tmp_path / "gc")
        with _engine(dataset) as engine:
            for _ in range(4):
                engine.insert_many([1.0], [2.0])
                engine.save_snapshot(directory, retain=2)
            assert snapshot_epochs(directory) == [3, 4]
            names = os.listdir(directory)
            assert not any(name.startswith("shard-0-1.") for name in names)


class TestRecoveredOwnerGaps:
    def test_torn_shard_wal_leaves_unknown_ids_not_garbage(self, tmp_path, dataset):
        """One shard's torn WAL tail must not poison the owner map (REVIEW
        issue: np.empty growth left garbage shard indices in the id gap, so
        a later delete routed to a random — or out-of-range — shard)."""
        directory = str(tmp_path / "gaps")
        with _engine(dataset, num_shards=2) as engine:
            engine.save_snapshot(directory)
            lefts = np.linspace(1.0, 10.0, 10)
            new_ids = engine.insert_many(lefts, lefts + 5.0)
            engine.sync_wal()
            owners = {int(g): engine.shard_of(int(g)) for g in new_ids}
            want_size = engine.size

        # shard 0 loses its whole epoch-1 log body; shard 1's survives, so
        # the recovered id space has gaps below its own top.
        truncate_file(os.path.join(directory, "wal-1-shard0.log"), WAL_HEADER_SIZE)
        lost = [g for g, owner in owners.items() if owner == 0]
        kept = [g for g, owner in owners.items() if owner == 1]
        assert lost and kept  # round-robin routed the batch to both shards

        with ShardedEngine.open(directory) as restored:
            assert restored.size == want_size - len(lost)
            # lost ids are *unknown*: delete reports False instead of
            # raising IndexError or deleting from the wrong shard ...
            assert restored.delete_many(lost).sum() == 0
            for g in lost:
                with pytest.raises(KeyError):
                    restored.shard_of(g)
            # ... while the surviving ids stay fully addressable.
            assert all(restored.shard_of(g) == 1 for g in kept)
            assert restored.delete_many(kept).all()


def _mangle_header_dtype(path: str) -> None:
    """Corrupt a dtype string inside a snapshot header, keeping the header
    CRC valid — the corruption surfaces as a parse error, not a checksum
    failure."""
    with open(path, "r+b") as handle:
        magic, header_len, _ = struct.unpack("<8sII", handle.read(16))
        header = handle.read(header_len)
        assert b'"<i8"' in header
        header = header.replace(b'"<i8"', b'"@#!"', 1)
        handle.seek(0)
        handle.write(struct.pack("<8sII", magic, header_len, zlib.crc32(header) & 0xFFFFFFFF))
        handle.write(header)


class TestEpochFallback:
    def test_crc_valid_but_unparseable_header_falls_back(self, tmp_path, dataset):
        """A corrupt-but-CRC-valid header field raises np.dtype's TypeError /
        ValueError, not SnapshotCorruptError; the per-epoch fallback loop
        must treat that as "epoch unusable", not abort recovery (REVIEW)."""
        directory = str(tmp_path / "parse")
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)              # epoch 1
            engine.insert_many([10.0], [20.0])           # -> wal-1
            engine.save_snapshot(directory)              # epoch 2
            want_size = engine.size
        _mangle_header_dtype(os.path.join(directory, "engine-2.state"))
        with ShardedEngine.open(directory) as restored:  # falls back to epoch 1
            assert restored.size == want_size
    def test_corrupt_newest_epoch_falls_back_and_replays(self, tmp_path, dataset):
        directory = str(tmp_path / "fb")
        queries = _queries()
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)                      # epoch 1
            engine.insert_many([10.0, 20.0], [15.0, 25.0])       # -> wal-1
            engine.save_snapshot(directory)                      # epoch 2
            engine.insert_many([30.0], [35.0])                   # -> wal-2
            engine.sync_wal()
            want_counts = engine.count_many(queries)
            want_size = engine.size

        # corrupt one shard snapshot of the newest epoch
        victim = os.path.join(directory, "shard-0-2.snap")
        _, data_start = read_header(victim)
        flip_byte(victim, data_start + 3)

        # recovery falls back to epoch 1 and replays wal-1 + wal-2
        with ShardedEngine.open(directory) as restored:
            assert restored.size == want_size
            np.testing.assert_array_equal(restored.count_many(queries), want_counts)

    def test_corrupt_manifest_falls_back(self, tmp_path, dataset):
        directory = str(tmp_path / "fbm")
        with _engine(dataset) as engine:
            engine.save_snapshot(directory)
            engine.save_snapshot(directory)
            want_size = engine.size
        manifest = os.path.join(directory, "MANIFEST-2.json")
        with open(manifest, "w", encoding="utf-8") as handle:
            handle.write("{ not json")
        with ShardedEngine.open(directory) as restored:
            assert restored.size == want_size

    def test_all_epochs_corrupt_raises(self, tmp_path, dataset):
        directory = str(tmp_path / "dead")
        with _engine(dataset) as engine:
            engine.save_snapshot(directory, retain=1)
        for name in os.listdir(directory):
            if name.startswith("shard-"):
                path = os.path.join(directory, name)
                _, data_start = read_header(path)
                flip_byte(path, data_start + 1)
        with pytest.raises(SnapshotCorruptError, match=r"no epoch passed validation"):
            ShardedEngine.open(directory)
