"""The resilient serving subsystem: admission, deadlines, breaker, drain.

Unit layer — the :mod:`repro.service.admission` state machines are driven
with injected clocks, so every transition is deterministic.

Integration layer — a real :class:`HttpFrontend` on an ephemeral loopback
port over a real gateway/engine stack, with failure injection at the
engine seam:

* a *gated* engine whose reads block on a test-controlled event (deadline
  and shedding tests create saturation on demand, no sleeps-as-load);
* a *flaky* engine raising worker-death-classified errors on demand (the
  circuit-breaker chaos test: trip to degraded read-only mode, then
  recover);
* graceful drain under concurrent writers: every 200-acked insert must be
  in the engine after ``close()``, and the listener must refuse new
  connections.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import IntervalDataset, WorkerTimeoutError
from repro.service import (
    AdmissionController,
    CircuitBreaker,
    Deadline,
    HttpFrontend,
    RequestGateway,
    RetryPolicy,
    ShardedEngine,
    http_request,
    is_worker_failure,
)

DOMAIN = (-1.0, 2000.0)


def _dataset(n: int = 64) -> IntervalDataset:
    lefts = np.linspace(0.0, 900.0, n)
    return IntervalDataset(lefts, lefts + 10.0)


# --------------------------------------------------------------------------- #
# unit: admission primitives
# --------------------------------------------------------------------------- #
class TestDeadline:
    def test_remaining_and_expiry(self):
        now = [100.0]
        deadline = Deadline(5.0, clock=lambda: now[0])
        assert deadline.remaining() == pytest.approx(5.0)
        now[0] = 104.0
        assert deadline.remaining() == pytest.approx(1.0)
        assert not deadline.expired()
        now[0] = 105.5
        assert deadline.remaining() == 0.0
        assert deadline.expired()

    def test_rejects_non_positive_budget(self):
        with pytest.raises(ValueError, match=r"deadline must be positive"):
            Deadline(0.0)


class TestAdmissionController:
    def test_admits_to_capacity_then_sheds(self):
        controller = AdmissionController(max_pending=3)
        assert [controller.acquire() for _ in range(4)] == [True, True, True, False]
        assert controller.depth == 3
        assert controller.shedding

    def test_hysteresis_resumes_below_low_water(self):
        controller = AdmissionController(max_pending=4, high_water=4, low_water=1)
        for _ in range(4):
            assert controller.acquire()
        assert not controller.acquire()  # latch on
        controller.release()
        controller.release()  # depth 2, still > low_water
        assert not controller.acquire()
        controller.release()  # depth 1 == low_water: latch releases
        assert controller.acquire()
        stats = controller.stats()
        assert stats["admitted_total"] == 5
        assert stats["shed_total"] == 2

    def test_release_without_acquire_raises(self):
        controller = AdmissionController(max_pending=1)
        with pytest.raises(RuntimeError, match=r"release\(\) without a matching acquire"):
            controller.release()

    @pytest.mark.parametrize(
        ("kwargs", "match"),
        [
            ({"max_pending": 0}, r"max_pending must be >= 1"),
            ({"max_pending": 2, "high_water": 3}, r"high_water must be in"),
            ({"max_pending": 4, "high_water": 2, "low_water": 2}, r"low_water must be in"),
            ({"retry_after_s": 0.0}, r"retry_after_s must be positive"),
        ],
    )
    def test_constructor_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            AdmissionController(**kwargs)


class TestRetryPolicy:
    def test_delay_schedule_without_jitter(self):
        policy = RetryPolicy(max_attempts=4, base_backoff_s=0.1, max_backoff_s=0.25, jitter=0.0)
        assert [round(d, 3) for d in policy.delays()] == [0.1, 0.2, 0.25]

    def test_jitter_shrinks_but_never_grows_delays(self):
        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.1, jitter=0.5, seed=7)
        for delay, base in zip(policy.delays(), [0.1, 0.2, 0.4, 0.5]):
            assert 0.5 * base <= delay <= base

    def test_single_attempt_means_no_retries(self):
        assert list(RetryPolicy(max_attempts=1).delays()) == []

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match=r"max_attempts must be >= 1"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match=r"jitter must be in"):
            RetryPolicy(jitter=1.5)


class TestWorkerFailureClassification:
    def test_worker_timeout_is_worker_failure(self):
        assert is_worker_failure(WorkerTimeoutError("shard worker (pid 1) timed out"))

    def test_respawn_cap_runtime_error_is_worker_failure(self):
        assert is_worker_failure(RuntimeError("shard worker died 4 times in a row; ..."))

    @pytest.mark.parametrize(
        "exc", [ValueError("bad query"), RuntimeError("engine is closed"), TimeoutError("t")]
    )
    def test_other_errors_are_not(self, exc):
        assert not is_worker_failure(exc)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(failure_threshold=3, cooldown_s=10.0, clock=lambda: 0.0)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allows_writes()

    def test_half_open_probe_closes_or_reopens(self):
        now = [0.0]
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=5.0, clock=lambda: now[0])
        breaker.record_failure()
        assert breaker.state == "open"
        now[0] = 5.1
        assert breaker.state == "half_open"
        assert not breaker.allows_writes()  # still degraded until the probe lands
        breaker.record_failure()  # probe failed: cooldown restarts
        assert breaker.state == "open"
        now[0] = 10.3
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allows_writes()
        stats = breaker.stats()
        assert stats["trips_total"] == 1
        assert stats["recoveries_total"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match=r"failure_threshold must be >= 1"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match=r"cooldown_s must be positive"):
            CircuitBreaker(cooldown_s=0.0)


# --------------------------------------------------------------------------- #
# failure-injecting engine proxies
# --------------------------------------------------------------------------- #
class _EngineProxy:
    """Delegate everything to the wrapped engine except what a test overrides."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)


class _GatedEngine(_EngineProxy):
    """Reads block on an event — saturation and deadline misses on demand."""

    def __init__(self, inner):
        super().__init__(inner)
        self.gate = threading.Event()
        self.gate.set()

    def count_many(self, queries):
        self.gate.wait()
        return self._inner.count_many(queries)


class _FlakyEngine(_EngineProxy):
    """Reads raise worker-death-classified errors while the storm flag is up."""

    def __init__(self, inner):
        super().__init__(inner)
        self.storm = False

    def count_many(self, queries):
        if self.storm:
            raise WorkerTimeoutError("shard worker (pid 4242) did not reply within 1s")
        return self._inner.count_many(queries)


# --------------------------------------------------------------------------- #
# integration: HTTP round trips
# --------------------------------------------------------------------------- #
class TestHttpEndpoints:
    @pytest.fixture
    def served(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        gateway = RequestGateway(engine, max_wait_ms=0.5)
        frontend = HttpFrontend(gateway)
        frontend.start_in_thread()
        yield frontend
        frontend.close()
        engine.close()

    def _post(self, frontend, path, body, timeout=30.0):
        host, port = frontend.address
        return http_request(host, port, "POST", path, body, timeout=timeout)

    def test_operations_round_trip(self, served, tmp_path):
        host, port = served.address
        base = 64

        status, _, body = self._post(served, "/count", {"query": list(DOMAIN)})
        assert (status, body["result"]) == (200, base)

        status, _, body = self._post(served, "/total_weight", {"query": list(DOMAIN)})
        assert status == 200 and body["result"] == pytest.approx(float(base))

        status, _, body = self._post(served, "/report", {"query": [0.0, 50.0]})
        assert status == 200 and isinstance(body["result"], list) and body["result"]

        status, _, body = self._post(
            served, "/sample", {"query": list(DOMAIN), "sample_size": 8}
        )
        assert status == 200 and len(body["result"]) == 8

        status, _, body = self._post(served, "/insert", {"interval": [100.0, 120.0]})
        assert status == 200
        new_id = body["result"]

        status, _, body = self._post(served, "/count", {"query": list(DOMAIN)})
        assert (status, body["result"]) == (200, base + 1)

        status, _, body = self._post(served, "/delete", {"id": new_id})
        assert (status, body["result"]) == (200, True)

        status, _, body = self._post(
            served, "/checkpoint", {"directory": str(tmp_path / "ckpt")}
        )
        assert (status, body["result"]) == (200, 1)

        status, _, body = http_request(host, port, "GET", "/healthz")
        assert (status, body["status"]) == (200, "alive")
        status, _, body = http_request(host, port, "GET", "/readyz")
        assert (status, body["status"]) == (200, "ready")
        status, _, stats = http_request(host, port, "GET", "/stats")
        assert status == 200
        assert stats["state"] == "ready"
        assert stats["frontend"]["responses_2xx"] >= 8
        assert stats["gateway"]["completions"]["count"] == 2
        assert stats["admission"]["depth"] == 0

    def test_error_mapping(self, served):
        host, port = served.address
        # malformed JSON -> 400
        status, _, body = self._post(served, "/count", None)
        assert status == 400 and "missing key" in body["error"]
        # invalid query -> 400
        status, _, body = self._post(served, "/count", {"query": [9.0, 1.0]})
        assert status == 400
        # empty sample with on_empty=raise -> 404
        status, _, body = self._post(
            served,
            "/sample",
            {"query": [1e6, 1e6 + 1.0], "sample_size": 4, "on_empty": "raise"},
        )
        assert status == 404 and "matched no intervals" in body["error"]
        # unknown endpoint -> 404
        status, _, body = self._post(served, "/query", {"query": [0.0, 1.0]})
        assert status == 404
        status, _, body = http_request(host, port, "GET", "/metrics")
        assert status == 404
        # bad deadline -> 400
        status, _, body = self._post(
            served, "/count", {"query": [0.0, 1.0], "deadline_ms": -5}
        )
        assert status == 400 and "deadline_ms" in body["error"]
        # the server survives all of the above
        status, _, body = self._post(served, "/count", {"query": list(DOMAIN)})
        assert status == 200


class TestDeadlines:
    def test_deadline_miss_cancels_and_returns_504(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        gated = _GatedEngine(engine)
        gateway = RequestGateway(gated, max_wait_ms=0.5)
        frontend = HttpFrontend(gateway)
        host, port = frontend.start_in_thread()
        try:
            gated.gate.clear()
            started = time.perf_counter()
            status, _, body = http_request(
                host, port, "POST", "/count",
                {"query": list(DOMAIN), "deadline_ms": 150},
            )
            elapsed = time.perf_counter() - started
            assert status == 504 and "deadline" in body["error"]
            assert elapsed < 5.0  # the 504 arrives at the deadline, not at completion
            gated.gate.set()
            # the stack is not wedged: the next request completes normally
            status, _, body = http_request(
                host, port, "POST", "/count", {"query": list(DOMAIN)}
            )
            assert (status, body["result"]) == (200, 64)
            status, _, stats = http_request(host, port, "GET", "/stats")
            assert stats["frontend"]["deadline_504"] == 1
        finally:
            gated.gate.set()
            frontend.close()
            engine.close()


class TestLoadShedding:
    def test_saturation_sheds_429_with_retry_after(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        gated = _GatedEngine(engine)
        gateway = RequestGateway(gated, max_wait_ms=0.5)
        frontend = HttpFrontend(
            gateway,
            admission=AdmissionController(max_pending=2, high_water=2, low_water=1,
                                          retry_after_s=0.25),
        )
        host, port = frontend.start_in_thread()
        results: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def client():
            status, headers, _ = http_request(
                host, port, "POST", "/count",
                {"query": list(DOMAIN), "deadline_ms": 30000}, timeout=60,
            )
            with lock:
                results.append((status, headers))

        try:
            gated.gate.clear()  # stall the engine: admitted requests hold slots
            threads = [threading.Thread(target=client) for _ in range(8)]
            for thread in threads:
                thread.start()
            # 2 requests occupy the admission window; the other 6 must be shed
            # *fast*, while the admitted ones are still stalled.
            deadline = time.time() + 30.0
            while time.time() < deadline:
                with lock:
                    if len(results) >= 6:
                        break
                time.sleep(0.01)
            gated.gate.set()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            gated.gate.set()
            frontend.close()
            engine.close()

        statuses = sorted(status for status, _ in results)
        assert statuses == [200, 200, 429, 429, 429, 429, 429, 429]
        for status, headers in results:
            if status == 429:
                assert int(headers["retry-after"]) >= 1
        assert frontend.stats()["frontend"]["shed_429"] == 6


class TestCircuitBreakerChaos:
    def test_breaker_trips_to_read_only_and_recovers(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        flaky = _FlakyEngine(engine)
        gateway = RequestGateway(flaky, max_wait_ms=0.5)
        frontend = HttpFrontend(
            gateway,
            retry=RetryPolicy(max_attempts=2, base_backoff_s=0.001, jitter=0.0),
            breaker=CircuitBreaker(failure_threshold=3, cooldown_s=0.2),
        )
        host, port = frontend.start_in_thread()
        try:
            # healthy
            status, _, _ = http_request(host, port, "POST", "/count", {"query": list(DOMAIN)})
            assert status == 200 and frontend.state == "ready"

            # worker-death storm: reads fail (after a retry each), breaker trips
            flaky.storm = True
            for _ in range(2):
                status, _, body = http_request(
                    host, port, "POST", "/count", {"query": list(DOMAIN)}
                )
                assert status == 500 and "shard worker" in body["error"]
            assert frontend.state == "degraded"

            # degraded read-only mode: writes refused with Retry-After
            status, headers, body = http_request(
                host, port, "POST", "/insert", {"interval": [1.0, 2.0]}
            )
            assert status == 503 and "read-only" in body["error"]
            assert "retry-after" in headers
            status, _, body = http_request(host, port, "GET", "/readyz")
            assert (status, body["status"]) == (503, "degraded")

            # storm ends; after the cooldown a successful read closes the breaker
            flaky.storm = False
            time.sleep(0.25)
            status, _, _ = http_request(host, port, "POST", "/count", {"query": list(DOMAIN)})
            assert status == 200
            assert frontend.state == "ready"
            status, _, _ = http_request(host, port, "POST", "/insert", {"interval": [1.0, 2.0]})
            assert status == 200
            status, _, body = http_request(host, port, "GET", "/readyz")
            assert status == 200

            stats = frontend.stats()
            assert stats["breaker"]["trips_total"] == 1
            assert stats["breaker"]["recoveries_total"] == 1
            assert stats["frontend"]["retries_total"] >= 2
            assert stats["frontend"]["worker_failures_total"] >= 3
        finally:
            frontend.close()
            engine.close()


class TestGracefulDrain:
    N_WRITERS = 3

    def test_drain_refuses_new_work_and_loses_no_acked_write(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        gateway = RequestGateway(engine, max_wait_ms=0.5)
        frontend = HttpFrontend(gateway)
        host, port = frontend.start_in_thread()
        acked: list[list[int]] = [[] for _ in range(self.N_WRITERS)]
        outcomes: list[int] = []
        lock = threading.Lock()
        stop = threading.Event()

        def writer(slot: int):
            rng = np.random.default_rng(5000 + slot)
            while not stop.is_set():
                left = float(rng.uniform(0.0, 900.0))
                try:
                    status, _, body = http_request(
                        host, port, "POST", "/insert",
                        {"interval": [left, left + 3.0]}, timeout=30,
                    )
                except (ConnectionError, OSError):
                    return  # listener is gone: drain reached this writer
                with lock:
                    outcomes.append(status)
                    if status == 200:
                        acked[slot].append(body["result"])

        threads = [
            threading.Thread(target=writer, args=(slot,)) for slot in range(self.N_WRITERS)
        ]
        for thread in threads:
            thread.start()
        deadline = time.time() + 30.0
        while time.time() < deadline:
            with lock:
                if all(len(ids) >= 5 for ids in acked):
                    break
            time.sleep(0.01)
        frontend.close()  # graceful drain while writers are firing
        stop.set()
        for thread in threads:
            thread.join(timeout=30)

        try:
            # only clean outcomes ever reached a client: acked, or refused-by-drain
            assert set(outcomes) <= {200, 503}
            flat = [gid for ids in acked for gid in ids]
            assert len(flat) == len(set(flat)) and len(flat) >= 5 * self.N_WRITERS
            # the gateway is closed behind the drained frontend
            with pytest.raises(Exception, match=r"gateway is closed"):
                gateway.submit("count", DOMAIN)
            # new connections are refused
            with pytest.raises((ConnectionError, OSError)):
                http_request(host, port, "GET", "/healthz", timeout=2)
            # every acked write survived the drain (engine outlives the frontend)
            surviving = set(int(g) for g in engine.report_many([DOMAIN])[0])
            assert set(flat) <= surviving
            assert engine.size == 64 + len(flat)
        finally:
            engine.close()

    def test_close_is_idempotent(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        gateway = RequestGateway(engine, max_wait_ms=0.5)
        frontend = HttpFrontend(gateway)
        frontend.start_in_thread()
        frontend.close()
        frontend.close()
        assert frontend.state == "closed"
        engine.close()
