"""SIGKILL crash-recovery property test.

A child process ingests deterministic write batches under ``fsync="always"``
and acknowledges each one; the parent kills it with SIGKILL mid-stream and
reopens the directory.  The recovered engine must match an oracle that
applied some valid prefix of the op stream containing *at least* every
acknowledged batch — the acknowledged => recovered contract.
"""

from __future__ import annotations

import pytest

from repro.persist.harness import deterministic_ops, make_base_dataset, run_kill_and_recover


class TestKillAndRecover:
    def test_acknowledged_writes_survive_sigkill(self, tmp_path):
        report = run_kill_and_recover(
            str(tmp_path / "kill"),
            base_n=3_000,
            seed=42,
            batch=8,
            kill_after_acks=4,
            num_shards=2,
        )
        assert report["ok"], report
        assert report["acked_ops"] >= 4 * 8
        assert report["recovered_ops"] >= report["acked_ops"]

    def test_different_seed_still_recovers(self, tmp_path):
        report = run_kill_and_recover(
            str(tmp_path / "kill2"),
            base_n=2_000,
            seed=7,
            batch=5,
            kill_after_acks=3,
            num_shards=3,
        )
        assert report["ok"], report

    def test_sampling_uniformity_not_rejected(self, tmp_path):
        report = run_kill_and_recover(
            str(tmp_path / "kill3"),
            base_n=3_000,
            seed=11,
            batch=8,
            kill_after_acks=4,
            num_shards=2,
        )
        assert report["ok"], report
        # chi-square on recovered sample_many draws: reject only at p < 1e-6
        assert report["sample_worst_p"] > 1e-6


class TestHarnessDeterminism:
    def test_op_stream_is_deterministic(self):
        a = deterministic_ops(seed=5, count=40, base_n=1_000)
        b = deterministic_ops(seed=5, count=40, base_n=1_000)
        assert len(a) == len(b) == 40
        for op_a, op_b in zip(a, b):
            assert op_a[0] == op_b[0]
            for x, y in zip(op_a[1:], op_b[1:]):
                assert (x == y).all() if hasattr(x, "all") else x == y

    def test_base_dataset_is_deterministic(self):
        d1 = make_base_dataset(500, seed=3)
        d2 = make_base_dataset(500, seed=3)
        assert len(d1) == len(d2) == 500
        assert (d1.lefts == d2.lefts).all() and (d1.rights == d2.rights).all()

    def test_delete_ops_present(self):
        ops = deterministic_ops(seed=9, count=20, base_n=1_000)
        kinds = {op[0] for op in ops}
        assert kinds == {"insert", "delete"}


@pytest.mark.timing
class TestKillAndRecoverHeavy:
    """Larger run, excluded from the default (tier-1) selection."""

    def test_larger_ingest_survives_sigkill(self, tmp_path):
        report = run_kill_and_recover(
            str(tmp_path / "kill-heavy"),
            base_n=20_000,
            seed=1234,
            batch=16,
            kill_after_acks=10,
            num_shards=4,
        )
        assert report["ok"], report
