"""Equivalence suite for the treeless columnar builder (FlatAIT.from_arrays).

The columnar builder commits to a strong contract: for any interval set, its
output is **bit-identical** to flattening a freshly built node tree over the
same data — every structure array, every list pool, every weight prefix,
every derived rank key.  These tests pin that contract across dataset shapes
(duplicates, point intervals, weighted columns, degenerate sizes), then
verify the wiring: the ``build_backend`` knob on AIT / AWIT / ShardedEngine,
lazy node-tree materialisation, and the handoff from a treeless snapshot to
the incremental dirty-journal refresh path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, AWIT, FlatAIT, IntervalDataset
from repro.core.errors import InvalidIntervalError, InvalidWeightError
from repro.core.flat import _segmented_cumsum
from repro.service import ShardedEngine

#: Every array a FlatAIT holds, including derived rank keys.
SNAPSHOT_ARRAYS = (
    "_centers",
    "_left_child",
    "_right_child",
    "_stab_off",
    "_stab_len",
    "_sub_off",
    "_sub_len",
    "_stab_lefts",
    "_stab_rights",
    "_sub_lefts",
    "_sub_rights",
    "_all_ids",
    "_all_weight_prefix",
    "_stab_lefts_key",
    "_stab_rights_key",
    "_sub_lefts_key",
    "_sub_rights_key",
)


def assert_snapshots_identical(actual: FlatAIT, expected: FlatAIT) -> None:
    """Bit-exact equality, dtype included — no allclose anywhere."""
    assert actual.node_count == expected.node_count
    assert actual.is_weighted == expected.is_weighted
    for name in SNAPSHOT_ARRAYS:
        left = getattr(actual, name)
        right = getattr(expected, name)
        if right is None:
            assert left is None, name
            continue
        assert left is not None, name
        assert left.dtype == right.dtype, (name, left.dtype, right.dtype)
        assert np.array_equal(left, right), name


def make_columns(n: int, seed: int, kind: str, weighted: bool, domain: float = 1000.0):
    """Endpoint (and optional weight) columns for one dataset shape."""
    rng = np.random.default_rng(seed)
    if kind == "uniform":
        lefts = rng.uniform(0.0, domain, n)
        lengths = rng.exponential(domain / 50.0, n)
    elif kind == "points":
        lefts = rng.uniform(0.0, domain, n)
        lengths = np.zeros(n)
    elif kind == "duplicates":
        base_count = max(1, n // 10)
        base_lefts = rng.uniform(0.0, domain, base_count)
        base_lengths = rng.exponential(domain / 50.0, base_count)
        picks = rng.integers(0, base_count, n)
        lefts = base_lefts[picks]
        lengths = base_lengths[picks]
    else:  # pragma: no cover - guarded by parametrize
        raise ValueError(kind)
    rights = lefts + lengths
    weights = rng.integers(1, 50, n).astype(np.float64) if weighted else None
    return lefts, rights, weights


SIZES = (0, 1, 2, 63, 1000)
KINDS = ("uniform", "points", "duplicates")


# ---------------------------------------------------------------------- #
# builder equivalence: from_arrays vs from_tree
# ---------------------------------------------------------------------- #
class TestFromArraysEquivalence:
    @pytest.mark.parametrize("n", SIZES)
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("weighted", (False, True))
    def test_arrays_identical_to_tree_flatten(self, n, kind, weighted):
        lefts, rights, weights = make_columns(n, seed=97 * n + 11, kind=kind, weighted=weighted)
        if n == 0:
            # AIT requires a non-empty dataset; an emptied tree is the oracle.
            tree = AIT(IntervalDataset.from_pairs([(0.0, 1.0)]), build_backend="tree")
            tree.delete(0)
        else:
            dataset = IntervalDataset(lefts, rights, weights)
            tree = (
                AWIT(dataset, build_backend="tree")
                if weighted
                else AIT(dataset, build_backend="tree")
            )
        expected = FlatAIT.from_tree(tree)
        actual = FlatAIT.from_arrays(lefts, rights, weights=weights)
        if n == 0 and weighted:
            # An emptied unweighted tree is the only empty oracle available;
            # compare the unweighted projection instead.
            actual = FlatAIT.from_arrays(lefts, rights)
        assert_snapshots_identical(actual, expected)

    @pytest.mark.parametrize("weighted", (False, True))
    def test_query_results_identical(self, weighted, make_queries):
        lefts, rights, weights = make_columns(800, seed=5, kind="uniform", weighted=weighted)
        dataset = IntervalDataset(lefts, rights, weights)
        tree = AWIT(dataset, build_backend="tree") if weighted else AIT(dataset, build_backend="tree")
        expected = FlatAIT.from_tree(tree)
        actual = FlatAIT.from_arrays(lefts, rights, weights=weights)
        queries = make_queries(dataset, count=30)
        assert actual.count_many(queries).tolist() == expected.count_many(queries).tolist()
        assert np.array_equal(
            actual.total_weight_many(queries), expected.total_weight_many(queries)
        )
        for mine, theirs in zip(actual.report_many(queries), expected.report_many(queries)):
            assert mine.tolist() == theirs.tolist()
        mine_rows = actual.sample_many(queries, 40, random_state=123)
        their_rows = expected.sample_many(queries, 40, random_state=123)
        for mine, theirs in zip(mine_rows, their_rows):
            # Identical arrays + identical RNG stream => identical draws.
            assert mine.tolist() == theirs.tolist()

    def test_non_identity_ids(self):
        """Sparse id maps (post-deletion active sets) round-trip exactly."""
        lefts, rights, _ = make_columns(400, seed=9, kind="uniform", weighted=False)
        dataset = IntervalDataset(lefts, rights)
        tree = AIT(dataset, build_backend="tree")
        victims = list(range(0, 400, 5))
        tree.delete_many(victims)
        tree._rebuild()  # force a fresh build over the survivors
        survivors = np.setdiff1d(np.arange(400), np.asarray(victims))
        actual = FlatAIT.from_arrays(lefts[survivors], rights[survivors], ids=survivors)
        assert_snapshots_identical(actual, FlatAIT.from_tree(tree))

    def test_validation_errors(self):
        with pytest.raises(InvalidIntervalError):
            FlatAIT.from_arrays([0.0, 1.0], [1.0])
        with pytest.raises(InvalidIntervalError):
            FlatAIT.from_arrays([0.0, 5.0], [1.0, 4.0])
        with pytest.raises(InvalidIntervalError):
            FlatAIT.from_arrays([0.0, np.nan], [1.0, 2.0])
        with pytest.raises(InvalidIntervalError):
            FlatAIT.from_arrays([0.0], [1.0], ids=[1, 2])
        with pytest.raises(InvalidWeightError):
            FlatAIT.from_arrays([0.0], [1.0], weights=[1.0, 2.0])
        with pytest.raises(InvalidWeightError):
            FlatAIT.from_arrays([0.0], [1.0], weights=[-1.0])
        with pytest.raises(InvalidIntervalError):
            FlatAIT.from_arrays([0.0, 5.0], [10.0, 15.0], ids=[7, 7])
        with pytest.raises(InvalidIntervalError):
            FlatAIT.from_arrays([0.0, 5.0], [10.0, 15.0], ids=[-1, 0])

    def test_sparse_huge_ids_use_compact_rank_lookup(self, make_queries):
        """Caller-supplied huge ids must not allocate id-sized rank tables."""
        lefts, rights, _ = make_columns(500, seed=13, kind="uniform", weighted=False)
        dense = FlatAIT.from_arrays(lefts, rights)
        huge = np.arange(500, dtype=np.int64) * 10**12 + 5
        sparse = FlatAIT.from_arrays(lefts, rights, ids=huge)
        dataset = IntervalDataset(lefts, rights)
        for query in make_queries(dataset, count=15):
            assert sparse.count(query) == dense.count(query)
            assert sparse.report(query).tolist() == huge[dense.report(query)].tolist()

    def test_arrays_equal_oracle(self):
        lefts, rights, weights = make_columns(200, seed=14, kind="uniform", weighted=True)
        one = FlatAIT.from_arrays(lefts, rights, weights=weights)
        two = FlatAIT.from_arrays(lefts, rights, weights=weights)
        unweighted = FlatAIT.from_arrays(lefts, rights)
        assert one.arrays_equal(two)
        assert not one.arrays_equal(unweighted)
        assert not unweighted.arrays_equal(FlatAIT.from_arrays(lefts[:-1], rights[:-1]))

    def test_segmented_cumsum_matches_per_segment_cumsum_bitwise(self):
        rng = np.random.default_rng(31)
        lengths = np.asarray([1, 7, 1, 3, 19, 7, 128, 1, 2], dtype=np.int64)
        values = rng.uniform(0.0, 1.0, int(lengths.sum()))
        out = _segmented_cumsum(values, lengths)
        start = 0
        for length in lengths:
            segment = values[start : start + int(length)]
            assert np.array_equal(out[start : start + int(length)], np.cumsum(segment))
            start += int(length)


# ---------------------------------------------------------------------- #
# build_backend wiring on AIT / AWIT
# ---------------------------------------------------------------------- #
class TestBuildBackendKnob:
    def test_rejects_unknown_backend(self, random_dataset):
        with pytest.raises(ValueError):
            AIT(random_dataset, build_backend="bogus")

    @pytest.mark.parametrize("weighted", (False, True))
    def test_backends_produce_identical_snapshots(self, make_random_dataset, weighted):
        dataset = make_random_dataset(n=700, seed=41, weighted=weighted)
        cls = AWIT if weighted else AIT
        columnar = cls(dataset, build_backend="columnar")
        legacy = cls(dataset, build_backend="tree")
        assert_snapshots_identical(columnar.flat(), legacy.flat())

    def test_columnar_snapshot_is_treeless(self, make_random_dataset):
        tree = AIT(make_random_dataset(n=500, seed=42))
        assert tree.build_backend == "columnar"
        assert not tree.tree_materialised
        tree.flat()  # full snapshot built straight from the columns
        assert not tree.tree_materialised
        assert tree.count_many([(0.0, 100.0)]).shape == (1,)
        assert not tree.tree_materialised  # batch path stays treeless

    def test_scalar_query_materialises_and_matches(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=500, seed=43)
        lazy = AIT(dataset)
        eager = AIT(dataset, build_backend="tree")
        queries = make_queries(dataset, count=15)
        counts = [lazy.count(q) for q in queries]  # materialises on first call
        assert lazy.tree_materialised
        assert counts == [eager.count(q) for q in queries]
        for query in queries:
            assert lazy.report(query).tolist() == eager.report(query).tolist()
        lazy.check_invariants()

    def test_structural_accessors_materialise_identically(self, make_random_dataset):
        dataset = make_random_dataset(n=300, seed=44)
        lazy = AIT(dataset)
        eager = AIT(dataset, build_backend="tree")
        assert lazy.height == eager.height
        assert lazy.node_count() == eager.node_count()
        assert lazy.root.center == eager.root.center
        assert lazy.memory_bytes() == eager.memory_bytes()

    def test_updates_after_treeless_snapshot_refresh_incrementally(
        self, make_random_dataset
    ):
        """The from_arrays snapshot hands off to the dirty-journal splice."""
        tree = AIT(make_random_dataset(n=2000, seed=45))
        tree.flat()
        assert tree.snapshot_full_builds == 1
        assert not tree.tree_materialised
        rng = np.random.default_rng(46)
        lefts = rng.uniform(0.0, 1000.0, 25)
        tree.insert_many(lefts, lefts + 5.0)  # materialises the node tree
        assert tree.tree_materialised
        tree.delete_many(rng.choice(2000, size=15, replace=False))
        refreshed = tree.flat()
        assert refreshed.built_incrementally
        assert tree.snapshot_full_builds == 1
        assert tree.snapshot_incremental_refreshes == 1
        assert_snapshots_identical(refreshed, FlatAIT.from_tree(tree))

    def test_bulk_load_stays_treeless(self):
        """insert_many dominating the tree rebuilds without materialising."""
        tree = AIT(IntervalDataset.from_pairs([(0.0, 1.0)]))
        rng = np.random.default_rng(47)
        lefts = rng.uniform(0.0, 1000.0, 5000)
        tree.insert_many(lefts, lefts + rng.exponential(20.0, 5000))
        assert not tree.tree_materialised
        snapshot = tree.flat()
        assert not tree.tree_materialised
        assert snapshot.count((0.0, 1000.0)) == tree.size

    def test_pooled_inserts_excluded_from_treeless_snapshot(self, make_random_dataset):
        dataset = make_random_dataset(n=300, seed=48)
        tree = AIT(dataset, batch_pool_size=100)
        pooled = tree.insert((5.0, 6.0))  # pooled, not flushed
        snapshot = tree.flat()
        assert pooled not in set(snapshot.report((0.0, 1000.0)).tolist())
        # ... while the public wrappers merge the pool back in, as always.
        assert pooled in set(tree.report((5.0, 5.5)).tolist())
        # Flushing (a scalar-path mutation) must not double-index the pooled
        # interval when the deferred tree materialises during the flush.
        tree.flush_pool()
        assert tree.count((5.0, 6.0)) == int(
            np.sum((dataset.lefts <= 6.0) & (dataset.rights >= 5.0))
        ) + 1
        tree.check_invariants()

    def test_scalar_awit_updates_on_columnar_backend(self, make_random_dataset):
        dataset = make_random_dataset(n=400, seed=49, weighted=True)
        tree = AWIT(dataset)
        total = tree.total_weight((0.0, 2000.0))
        new_id = tree.insert((10.0, 20.0))
        assert tree.total_weight((0.0, 2000.0)) == pytest.approx(total + 1.0)
        assert tree.delete(new_id)
        assert tree.total_weight((0.0, 2000.0)) == pytest.approx(total)


# ---------------------------------------------------------------------- #
# service layer wiring
# ---------------------------------------------------------------------- #
class TestServiceBackend:
    @pytest.mark.parametrize("num_shards", (1, 3))
    def test_engine_backends_serve_identical_results(
        self, make_random_dataset, make_queries, num_shards
    ):
        dataset = make_random_dataset(n=900, seed=50)
        queries = make_queries(dataset, count=20)
        with ShardedEngine(dataset, num_shards=num_shards) as columnar, ShardedEngine(
            dataset, num_shards=num_shards, build_backend="tree"
        ) as legacy:
            assert columnar.build_backend == "columnar"
            assert columnar.count_many(queries).tolist() == legacy.count_many(queries).tolist()
            for mine, theirs in zip(
                columnar.report_many(queries), legacy.report_many(queries)
            ):
                assert sorted(mine.tolist()) == sorted(theirs.tolist())
            mine_rows = columnar.sample_many(queries, 25, random_state=7)
            their_rows = legacy.sample_many(queries, 25, random_state=7)
            for mine, theirs in zip(mine_rows, their_rows):
                assert mine.tolist() == theirs.tolist()

    def test_columnar_shards_defer_trees_until_writes(self, make_random_dataset):
        dataset = make_random_dataset(n=600, seed=51)
        with ShardedEngine(dataset, num_shards=2) as engine:
            engine.count((0.0, 100.0))
            assert all(not shard.tree.tree_materialised for shard in engine.shards)
            engine.insert((1.0, 2.0))
            engine.refresh()  # write replay materialises the owning shard
            assert any(shard.tree.tree_materialised for shard in engine.shards)
            assert engine.count((1.0, 1.5)) >= 1

    def test_write_then_read_consistency_across_backends(
        self, make_random_dataset, make_queries
    ):
        dataset = make_random_dataset(n=500, seed=52)
        queries = make_queries(dataset, count=10)
        engines = [
            ShardedEngine(dataset, num_shards=2, build_backend=backend)
            for backend in ("columnar", "tree")
        ]
        try:
            rng = np.random.default_rng(53)
            lefts = rng.uniform(0.0, 1000.0, 40)
            rights = lefts + rng.exponential(20.0, 40)
            for engine in engines:
                engine.insert_many(lefts, rights)
                engine.delete_many(list(range(0, 60, 3)))
            columnar_counts = engines[0].count_many(queries)
            legacy_counts = engines[1].count_many(queries)
            assert columnar_counts.tolist() == legacy_counts.tolist()
        finally:
            for engine in engines:
                engine.close()

    def test_parallel_refresh_with_lazy_map_executor(self, make_random_dataset):
        """A raw ThreadPoolExecutor (lazy map iterator) must work end to end."""
        from concurrent.futures import ThreadPoolExecutor

        dataset = make_random_dataset(n=400, seed=56)
        pool = ThreadPoolExecutor(max_workers=2)
        try:
            engine = ShardedEngine(
                dataset, num_shards=2, executor=pool, parallel_refresh=True
            )
            assert len(engine.shards) == 2
            engine.insert_many([1.0, 2.0], [3.0, 4.0])
            versions_before = engine.versions()
            engine.refresh(parallel=True)
            assert engine.pending_ops() == 0
            assert engine.versions() != versions_before
            assert engine.count((1.0, 4.0)) >= 2
            engine.close()
        finally:
            pool.shutdown()

    def test_parallel_refresh_matches_serial(self, make_random_dataset, make_queries):
        dataset = make_random_dataset(n=800, seed=54)
        queries = make_queries(dataset, count=10)
        serial = ShardedEngine(dataset, num_shards=4)
        parallel = ShardedEngine(
            dataset, num_shards=4, executor="threads", parallel_refresh=True
        )
        try:
            assert parallel.parallel_refresh
            rng = np.random.default_rng(55)
            lefts = rng.uniform(0.0, 1000.0, 30)
            rights = lefts + rng.exponential(20.0, 30)
            for engine in (serial, parallel):
                engine.insert_many(lefts, rights)
                engine.delete_many(list(range(10)))
                engine.refresh()
            assert serial.versions() == parallel.versions()
            assert serial.count_many(queries).tolist() == parallel.count_many(queries).tolist()
        finally:
            serial.close()
            parallel.close()
