"""Tests for the measurement harness, memory estimation and the experiment grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT
from repro.experiments import (
    ExperimentConfig,
    NON_WEIGHTED_ALGORITHMS,
    WEIGHTED_ALGORITHMS,
    build_dataset,
    build_workload,
    deep_sizeof,
    make_adapters,
    measure_build,
    measure_counting,
    measure_query_timings,
    run_grid,
    structure_memory_bytes,
)

TINY = ExperimentConfig.smoke().with_overrides(
    datasets=("btc",), dataset_size=3000, query_count=5, sample_size=100, update_count=20
)


class TestAdapters:
    def test_nonweighted_registry(self):
        adapters = make_adapters(NON_WEIGHTED_ALGORITHMS)
        assert [a.name for a in adapters] == list(NON_WEIGHTED_ALGORITHMS)

    def test_weighted_registry(self):
        adapters = make_adapters(WEIGHTED_ALGORITHMS, weighted=True)
        assert [a.name for a in adapters] == list(WEIGHTED_ALGORITHMS)

    def test_unknown_algorithm_raises(self):
        with pytest.raises(KeyError):
            make_adapters(["bogus"])

    def test_adapter_roundtrip_on_tiny_data(self):
        dataset = build_dataset(TINY, "btc")
        workload = build_workload(TINY, dataset, "btc")
        for adapter in make_adapters(("ait", "hint")):
            index, seconds = measure_build(adapter, dataset)
            assert seconds >= 0.0
            timings = measure_query_timings(adapter, index, workload, 50, seed=0)
            assert timings.candidate_us >= 0.0
            assert timings.sampling_us >= 0.0
            assert timings.total_us == pytest.approx(timings.candidate_us + timings.sampling_us)


class TestDatasetAndWorkloadBuilders:
    def test_build_dataset_respects_size_and_seed(self):
        a = build_dataset(TINY, "btc")
        b = build_dataset(TINY, "btc")
        assert len(a) == TINY.dataset_size
        np.testing.assert_array_equal(a.lefts, b.lefts)

    def test_build_dataset_weighted(self):
        assert build_dataset(TINY, "btc", weighted=True).is_weighted

    def test_build_workload_extent_override(self):
        dataset = build_dataset(TINY, "btc")
        workload = build_workload(TINY, dataset, "btc", extent_fraction=0.5, count=7)
        assert len(workload) == 7
        assert workload.extent_fraction == 0.5


class TestMeasurement:
    def test_measure_counting_positive(self):
        dataset = build_dataset(TINY, "btc")
        workload = build_workload(TINY, dataset, "btc")
        tree = AIT(dataset)
        assert measure_counting(tree, workload) > 0.0

    def test_structure_memory_prefers_memory_bytes(self):
        dataset = build_dataset(TINY, "btc")
        tree = AIT(dataset)
        assert structure_memory_bytes(tree) == tree.memory_bytes()

    def test_deep_sizeof_fallback(self):
        payload = {"a": [1, 2, 3], "b": np.zeros(100), "c": ("x", {"y": 2.0})}
        size = deep_sizeof(payload)
        assert size > 800  # at least the numpy buffer

    def test_deep_sizeof_handles_cycles(self):
        a: list = []
        a.append(a)
        assert deep_sizeof(a) > 0


class TestGrid:
    def test_grid_covers_every_pair(self):
        cells = run_grid(TINY, ("ait", "interval_tree"))
        pairs = {(c.dataset, c.algorithm) for c in cells}
        assert pairs == {("btc", "ait"), ("btc", "interval_tree")}
        for cell in cells:
            assert cell.build_seconds >= 0
            assert cell.memory_bytes > 0
            assert cell.timings.total_us >= 0
