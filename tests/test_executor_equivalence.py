"""Cross-executor equivalence: serial, threaded and process tiers are bit-identical.

The acceptance bar (ISSUE 7) is that moving the scatter step off the owner
process is *observationally invisible*: for the same dataset, the same
queries and the same seed, ``SerialExecutor``, ``ThreadedExecutor`` and
``ProcessExecutor`` produce bit-identical ``count_many`` /
``total_weight_many`` / ``report_many`` rows and identical ``sample_many``
draws — including after ``insert_many`` / ``delete_many`` and the snapshot
refresh that republishes shared segments.  Every executor runs the same
module-level op implementations (:data:`repro.service.shm.SHARD_OPS`), so
equality here is an end-to-end check of the shared-memory pack/attach
round-trip and of the publish-on-version-bump protocol, not a tautology.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ShardedEngine
from repro.service import ProcessExecutor

SHARD_COUNTS = (1, 2, 4, 8)
EXECUTORS = ("serial", "threads", "process")


def _make_engine(dataset, num_shards, executor):
    if executor == "process":
        # An explicit two-worker pool exercises multi-worker routing (the
        # round-robin shard->worker assignment) even on single-core CI boxes,
        # where cpu_count would collapse the pool to one worker.
        return ShardedEngine(
            dataset, num_shards=num_shards, executor=ProcessExecutor(max_workers=2)
        )
    return ShardedEngine(dataset, num_shards=num_shards, executor=executor)


def _close(engine):
    # A caller-supplied ProcessExecutor is not owned by the engine: shut it
    # down explicitly so worker processes and shared segments never outlive
    # the test.
    executor = engine._executor
    engine.close()
    if isinstance(executor, ProcessExecutor):
        executor.shutdown()


@pytest.fixture
def dataset(make_random_dataset):
    return make_random_dataset(n=600, seed=31)


@pytest.fixture
def weighted(make_random_dataset):
    return make_random_dataset(n=400, seed=32, weighted=True)


@pytest.fixture
def queries(dataset, make_queries):
    batch = []
    for extent in (0.02, 0.1, 0.5):
        batch.extend(make_queries(dataset, count=8, extent=extent, seed=int(extent * 1000)))
    lo, hi = dataset.domain()
    batch.append((lo - 1.0, hi + 1.0))   # full-domain query
    batch.append((hi + 5.0, hi + 6.0))   # empty query
    return batch


def _read_all(engine, queries, seed):
    """One deterministic read of every query op, as comparable plain arrays."""
    counts = engine.count_many(queries)
    weights = engine.total_weight_many(queries)
    reports = engine.report_many(queries)
    draws = engine.sample_many(queries, 16, random_state=np.random.default_rng(seed))
    return counts, weights, reports, draws


def _assert_identical(got, expected):
    counts, weights, reports, draws = got
    exp_counts, exp_weights, exp_reports, exp_draws = expected
    assert np.array_equal(counts, exp_counts)
    assert counts.dtype == exp_counts.dtype
    # Bitwise float equality, deliberately: the per-shard reduction order is
    # fixed (shard-major sum), so even float64 weights must match exactly.
    assert np.array_equal(weights, exp_weights)
    assert len(reports) == len(exp_reports)
    for row, exp_row in zip(reports, exp_reports):
        assert np.array_equal(row, exp_row)
    assert len(draws) == len(exp_draws)
    for row, exp_row in zip(draws, exp_draws):
        assert np.array_equal(row, exp_row)


@pytest.mark.parametrize("num_shards", SHARD_COUNTS)
def test_executors_bit_identical_static(dataset, queries, num_shards):
    serial = _make_engine(dataset, num_shards, "serial")
    try:
        expected = _read_all(serial, queries, seed=901)
    finally:
        _close(serial)
    for name in ("threads", "process"):
        engine = _make_engine(dataset, num_shards, name)
        try:
            assert engine.executor_kind == name
            _assert_identical(_read_all(engine, queries, seed=901), expected)
        finally:
            _close(engine)


@pytest.mark.parametrize("num_shards", (2, 4))
def test_executors_bit_identical_weighted(weighted, make_queries, num_shards):
    batch = make_queries(weighted, count=20, extent=0.1, seed=9)
    serial = _make_engine(weighted, num_shards, "serial")
    try:
        assert serial.is_weighted
        expected = _read_all(serial, batch, seed=77)
    finally:
        _close(serial)
    engine = _make_engine(weighted, num_shards, "process")
    try:
        _assert_identical(_read_all(engine, batch, seed=77), expected)
    finally:
        _close(engine)


@pytest.mark.parametrize("num_shards", (1, 4))
def test_executors_bit_identical_after_updates(dataset, queries, num_shards):
    """Writes + refresh republish shared segments; reads must stay identical.

    The write schedule is identical on every engine (same trial RNG seed), so
    after each round the engines hold the same logical dataset and every read
    must agree bit-for-bit with the serial reference — this is the randomized
    seeded-trials form of the acceptance criterion.
    """
    engines = {name: _make_engine(dataset, num_shards, name) for name in EXECUTORS}
    try:
        for round_seed in (101, 202, 303):
            trial = np.random.default_rng(round_seed)
            lo, hi = dataset.domain()
            lefts = trial.uniform(lo, hi, 12)
            rights = lefts + trial.exponential((hi - lo) / 40.0, 12)
            victims = trial.integers(0, len(dataset), 5)

            new_ids = {}
            for name, engine in engines.items():
                new_ids[name] = engine.insert_many(lefts, rights)
                engine.delete_many(victims)
                engine.refresh()
            # Global id assignment is part of the observable contract.
            assert np.array_equal(new_ids["threads"], new_ids["serial"])
            assert np.array_equal(new_ids["process"], new_ids["serial"])

            expected = _read_all(engines["serial"], queries, seed=round_seed)
            for name in ("threads", "process"):
                _assert_identical(_read_all(engines[name], queries, seed=round_seed), expected)
    finally:
        for engine in engines.values():
            _close(engine)


@pytest.mark.parametrize("num_shards", (1, 2, 4))
@pytest.mark.parametrize("block_size", (1, 7, None))
def test_query_scatter_bit_identical(dataset, queries, num_shards, block_size):
    """The query-parallel scatter matches serial for every tiling of the batch.

    ``block_size=None`` is the even-split default; 1 and 7 force tile cuts at
    every position and at deliberately seed-block-misaligned strides (the
    executor must round sampling tiles up to SEED_BLOCK multiples itself).
    """
    serial = _make_engine(dataset, num_shards, "serial")
    try:
        expected = _read_all(serial, queries, seed=511)
    finally:
        _close(serial)
    executor = ProcessExecutor(max_workers=2, scatter="query", block_size=block_size)
    engine = ShardedEngine(dataset, num_shards=num_shards, executor=executor)
    try:
        assert engine.scatter == "query"
        _assert_identical(_read_all(engine, queries, seed=511), expected)
    finally:
        _close(engine)


def test_query_scatter_bit_identical_weighted(weighted, make_queries):
    """Weighted sampling under query tiling: draws still match serial exactly."""
    batch = make_queries(weighted, count=33, extent=0.1, seed=12)
    serial = _make_engine(weighted, 4, "serial")
    try:
        expected = _read_all(serial, batch, seed=88)
    finally:
        _close(serial)
    executor = ProcessExecutor(max_workers=2, scatter="query", block_size=7)
    engine = ShardedEngine(weighted, num_shards=4, executor=executor)
    try:
        _assert_identical(_read_all(engine, batch, seed=88), expected)
    finally:
        _close(engine)


def test_query_scatter_bit_identical_after_updates(dataset, queries):
    """Version bumps republish to every worker; query tiles stay identical."""
    executor = ProcessExecutor(max_workers=2, scatter="query", block_size=7)
    serial = _make_engine(dataset, 2, "serial")
    engine = ShardedEngine(dataset, num_shards=2, executor=executor)
    try:
        for round_seed in (404, 505):
            trial = np.random.default_rng(round_seed)
            lo, hi = dataset.domain()
            lefts = trial.uniform(lo, hi, 12)
            rights = lefts + trial.exponential((hi - lo) / 40.0, 12)
            victims = trial.integers(0, len(dataset), 5)
            for eng in (serial, engine):
                eng.insert_many(lefts, rights)
                eng.delete_many(victims)
                eng.refresh()
            expected = _read_all(serial, queries, seed=round_seed)
            _assert_identical(_read_all(engine, queries, seed=round_seed), expected)
    finally:
        _close(serial)
        _close(engine)


def test_query_scatter_survives_worker_death_mid_block_schedule(dataset, queries):
    """A worker dies holding half the tiles; respawn replays and re-answers.

    With ``block_size=1`` every query is its own tile, so the killed worker
    owned tiles interleaved through the whole batch — the respawn must replay
    every segment manifest (each worker serves all shards under the query
    scatter) and the reassembly must still restore submission order.
    """
    executor = ProcessExecutor(max_workers=2, scatter="query", block_size=1)
    engine = ShardedEngine(dataset, num_shards=4, executor=executor)
    try:
        expected = engine.count_many(queries)
        draws = engine.sample_many(queries, 16, random_state=np.random.default_rng(3))
        before = executor.worker_pids()
        executor.kill_worker(0)
        assert np.array_equal(engine.count_many(queries), expected)
        again = engine.sample_many(queries, 16, random_state=np.random.default_rng(3))
        for row, exp_row in zip(again, draws):
            assert np.array_equal(row, exp_row)
        after = executor.worker_pids()
        assert after[0] != before[0]       # a fresh process took slot 0
        assert after[1:] == before[1:]     # the survivor kept serving
    finally:
        engine.close()
        executor.shutdown()


def test_auto_scatter_matches_serial_on_both_sides_of_threshold(dataset, make_queries):
    """``scatter="auto"`` flips strategy on batch size; both regimes match serial."""
    from repro.service.executor import AUTO_QUERY_THRESHOLD

    small = make_queries(dataset, count=AUTO_QUERY_THRESHOLD - 1, extent=0.05, seed=21)
    large = make_queries(dataset, count=AUTO_QUERY_THRESHOLD + 9, extent=0.05, seed=22)
    serial = _make_engine(dataset, 2, "serial")
    executor = ProcessExecutor(max_workers=2, scatter="auto")
    engine = ShardedEngine(dataset, num_shards=2, executor=executor)
    try:
        assert engine.scatter == "auto"
        for batch in (small, large):
            expected = _read_all(serial, batch, seed=61)
            _assert_identical(_read_all(engine, batch, seed=61), expected)
    finally:
        _close(serial)
        _close(engine)


def test_process_executor_survives_worker_death(dataset, queries):
    """A killed worker respawns, replays its segment manifests and re-answers."""
    executor = ProcessExecutor(max_workers=2)
    engine = ShardedEngine(dataset, num_shards=4, executor=executor)
    try:
        expected = engine.count_many(queries)
        before = executor.worker_pids()
        executor.kill_worker(0)
        assert np.array_equal(engine.count_many(queries), expected)
        after = executor.worker_pids()
        assert after[0] != before[0]       # a fresh process took slot 0
        assert after[1:] == before[1:]     # the survivor kept serving
    finally:
        engine.close()
        executor.shutdown()


def test_sample_draws_match_across_seeds(dataset):
    """Same seed => same draws; different seed => (almost surely) different."""
    queries = [(100.0, 400.0)]
    serial = _make_engine(dataset, 4, "serial")
    process = _make_engine(dataset, 4, "process")
    try:
        a = serial.sample_many(queries, 64, random_state=np.random.default_rng(5))[0]
        b = process.sample_many(queries, 64, random_state=np.random.default_rng(5))[0]
        c = process.sample_many(queries, 64, random_state=np.random.default_rng(6))[0]
        assert np.array_equal(a, b)
        assert not np.array_equal(b, c)
    finally:
        _close(serial)
        _close(process)
