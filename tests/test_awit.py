"""Tests for the AWIT: prefix-sum consistency, weighted counting and weighted sampling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import AIT, AWIT, IntervalDataset, ListKind
from repro.stats import chi_square_weighted


class TestStructure:
    def test_awit_is_weighted_ait(self, weighted_dataset):
        tree = AWIT(weighted_dataset)
        assert tree.is_weighted
        assert isinstance(tree, AIT)

    def test_prefix_arrays_are_consistent_with_weights(self, weighted_dataset):
        tree = AWIT(weighted_dataset)
        weights = weighted_dataset.weights
        for node in tree.iter_nodes():
            for kind in ListKind:
                ids = node.list_ids(kind)
                if ids.shape[0] == 0:
                    continue
                prefix = node.list_weight_prefix(kind)
                np.testing.assert_allclose(prefix, np.cumsum(weights[ids]), rtol=1e-9)

    def test_unweighted_dataset_gives_unit_weights(self, random_dataset):
        tree = AWIT(random_dataset)
        lo, hi = random_dataset.domain()
        assert tree.total_weight((lo, hi)) == pytest.approx(len(random_dataset))

    def test_plain_ait_has_no_prefix_arrays(self, weighted_dataset):
        tree = AIT(weighted_dataset)
        with pytest.raises(ValueError):
            tree.root.list_weight_prefix(ListKind.STAB_BY_LEFT)

    def test_memory_larger_than_plain_ait(self, weighted_dataset):
        assert AWIT(weighted_dataset).memory_bytes() > AIT(weighted_dataset).memory_bytes()


class TestWeightedCounting:
    def test_total_weight_matches_oracle(self, weighted_dataset, make_queries):
        tree = AWIT(weighted_dataset)
        for query in make_queries(weighted_dataset, count=25):
            truth_ids = weighted_dataset.overlap_indices(*query)
            expected = float(weighted_dataset.weights[truth_ids].sum())
            assert tree.total_weight(query) == pytest.approx(expected, rel=1e-9)

    def test_total_weight_empty_region_is_zero(self, weighted_dataset):
        tree = AWIT(weighted_dataset)
        _, hi = weighted_dataset.domain()
        assert tree.total_weight((hi + 5.0, hi + 6.0)) == 0.0

    def test_count_and_report_still_exact(self, weighted_dataset, make_queries, ground_truth):
        tree = AWIT(weighted_dataset)
        for query in make_queries(weighted_dataset, count=20):
            truth = ground_truth(weighted_dataset, query)
            assert set(tree.report(query).tolist()) == truth
            assert tree.count(query) == len(truth)

    def test_weights_of_accessor(self, weighted_dataset):
        tree = AWIT(weighted_dataset)
        ids = np.array([0, 1, 2])
        np.testing.assert_allclose(tree.weights_of(ids), weighted_dataset.weights[ids])


class TestWeightedSampling:
    def test_samples_are_members(self, weighted_dataset, make_queries, ground_truth):
        tree = AWIT(weighted_dataset)
        for query in make_queries(weighted_dataset, count=10):
            truth = ground_truth(weighted_dataset, query)
            if not truth:
                continue
            samples = tree.sample(query, 200, random_state=1)
            assert set(samples.tolist()) <= truth

    def test_sampling_distribution_tracks_weights(self, weighted_dataset, make_queries, ground_truth):
        tree = AWIT(weighted_dataset)
        query = make_queries(weighted_dataset, count=1, extent=0.15, seed=3)[0]
        truth = sorted(ground_truth(weighted_dataset, query))
        assert len(truth) >= 10
        weights = weighted_dataset.weights[truth]
        samples = tree.sample(query, 60 * len(truth), random_state=9)
        fit = chi_square_weighted(samples.tolist(), truth, weights.tolist())
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_zero_weight_interval_never_sampled(self):
        dataset = IntervalDataset([0.0, 1.0, 2.0], [10.0, 11.0, 12.0], weights=[5.0, 0.0, 5.0])
        tree = AWIT(dataset)
        samples = tree.sample((0.0, 20.0), 3000, random_state=0)
        assert 1 not in set(samples.tolist())
        assert set(samples.tolist()) == {0, 2}

    def test_heavy_weight_dominates(self):
        dataset = IntervalDataset([0.0, 1.0], [10.0, 11.0], weights=[1.0, 99.0])
        tree = AWIT(dataset)
        samples = tree.sample((0.0, 20.0), 10_000, random_state=4)
        share = float(np.mean(samples == 1))
        assert share == pytest.approx(0.99, abs=0.01)

    def test_deterministic_given_seed(self, weighted_dataset, make_queries):
        tree = AWIT(weighted_dataset)
        query = make_queries(weighted_dataset, count=1)[0]
        np.testing.assert_array_equal(
            tree.sample(query, 100, random_state=7), tree.sample(query, 100, random_state=7)
        )

    def test_empty_region_behaviour(self, weighted_dataset):
        from repro import EmptyResultError

        tree = AWIT(weighted_dataset)
        _, hi = weighted_dataset.domain()
        assert tree.sample((hi + 5.0, hi + 6.0), 10).shape == (0,)
        with pytest.raises(EmptyResultError):
            tree.sample((hi + 5.0, hi + 6.0), 10, on_empty="raise")

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(st.integers(min_value=0, max_value=50), min_size=2, max_size=40).filter(
            lambda w: sum(w) > 0
        )
    )
    def test_only_positive_weight_members_sampled(self, weights):
        n = len(weights)
        lefts = np.arange(n, dtype=float)
        rights = lefts + 5.0
        dataset = IntervalDataset(lefts, rights, weights=[float(w) for w in weights])
        tree = AWIT(dataset)
        samples = tree.sample((0.0, float(n + 10)), 300, random_state=0)
        assert all(weights[i] > 0 for i in samples.tolist())
