"""Shared fixtures for the test-suite.

The fixtures provide (a) a small handcrafted dataset mirroring the running
example of the paper (Fig. 2), (b) factories for random datasets of various
shapes, and (c) helpers to compute ground truth by brute force.

The module also enforces hang hygiene for the multiprocess execution tier
(ISSUE 7): every test gets a wall-clock budget delivered by ``SIGALRM``
(default :data:`DEFAULT_TEST_TIMEOUT` seconds, override per test with
``@pytest.mark.timeout(seconds)``), so a deadlocked worker queue fails one
test with a ``TimeoutError`` and a live traceback instead of wedging the
whole suite.  The pytest built-in ``faulthandler_timeout`` (set in
``pyproject.toml``) is the backstop for hangs inside C code that never
releases the GIL: it dumps all thread stacks before the CI job is killed.
"""

from __future__ import annotations

import signal
import threading

import numpy as np
import pytest

from repro import Interval, IntervalDataset

#: Per-test wall-clock budget (seconds).  Generous: the slowest legitimate
#: tests (process-executor spawns, kill-and-recover) finish in well under a
#: minute; anything that hits this is hung, not slow.
DEFAULT_TEST_TIMEOUT = 120.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Abort any test that exceeds its wall-clock budget with a TimeoutError.

    Pure stdlib (``signal.setitimer``), POSIX-only, main-thread-only — on
    any other platform or thread the hook degrades to a no-op and the
    ``faulthandler_timeout`` backstop still applies.
    """
    marker = item.get_closest_marker("timeout")
    seconds = float(marker.args[0]) if marker and marker.args else DEFAULT_TEST_TIMEOUT
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def on_alarm(signum, frame):  # pragma: no cover - only fires on a hang
        raise TimeoutError(
            f"test exceeded its {seconds:.0f}s wall-clock budget "
            f"(override with @pytest.mark.timeout(seconds))"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def paper_example_dataset() -> IntervalDataset:
    """Eleven intervals laid out like the running example (Fig. 2) of the paper."""
    intervals = [
        Interval(4.0, 9.0),    # x1: straddles the middle of the domain
        Interval(1.0, 3.0),    # x2
        Interval(8.0, 11.0),   # x3
        Interval(2.0, 4.0),    # x4
        Interval(9.0, 12.0),   # x5
        Interval(5.0, 7.0),    # x6
        Interval(11.0, 13.0),  # x7
        Interval(0.0, 1.0),    # x8
        Interval(3.0, 4.5),    # x9
        Interval(7.5, 9.5),    # x10
        Interval(12.0, 14.0),  # x11
    ]
    return IntervalDataset.from_intervals(intervals)


@pytest.fixture
def make_random_dataset():
    """Factory for random datasets: make_random_dataset(n, seed, kind, weighted)."""

    def _make(
        n: int = 500,
        seed: int = 0,
        kind: str = "uniform",
        weighted: bool = False,
        domain: float = 1000.0,
    ) -> IntervalDataset:
        rng = np.random.default_rng(seed)
        if kind == "uniform":
            lefts = rng.uniform(0.0, domain, n)
            lengths = rng.exponential(domain / 50.0, n)
        elif kind == "long":
            lefts = rng.uniform(0.0, domain, n)
            lengths = rng.uniform(domain / 4.0, domain / 2.0, n)
        elif kind == "points":
            lefts = rng.uniform(0.0, domain, n)
            lengths = np.zeros(n)
        elif kind == "clustered":
            centers = rng.uniform(0.0, domain, 5)
            lefts = centers[rng.integers(0, 5, n)] + rng.normal(0.0, domain / 100.0, n)
            lefts = np.clip(lefts, 0.0, domain)
            lengths = rng.exponential(domain / 100.0, n)
        elif kind == "duplicates":
            base_lefts = rng.uniform(0.0, domain, max(1, n // 10))
            base_lengths = rng.exponential(domain / 50.0, max(1, n // 10))
            idx = rng.integers(0, base_lefts.shape[0], n)
            lefts = base_lefts[idx]
            lengths = base_lengths[idx]
        else:
            raise ValueError(f"unknown dataset kind {kind!r}")
        rights = lefts + lengths
        weights = rng.integers(1, 101, n).astype(np.float64) if weighted else None
        return IntervalDataset(lefts, rights, weights)

    return _make


@pytest.fixture
def random_dataset(make_random_dataset) -> IntervalDataset:
    """A medium random dataset used by most structure tests."""
    return make_random_dataset(n=800, seed=7)


@pytest.fixture
def weighted_dataset(make_random_dataset) -> IntervalDataset:
    """A medium random dataset with integer weights in [1, 100]."""
    return make_random_dataset(n=600, seed=11, weighted=True)


@pytest.fixture
def make_queries():
    """Factory for random query workloads: make_queries(dataset, count, extent, seed)."""

    def _make(dataset: IntervalDataset, count: int = 25, extent: float = 0.08, seed: int = 3):
        rng = np.random.default_rng(seed)
        lo, hi = dataset.domain()
        length = (hi - lo) * extent
        lefts = rng.uniform(lo, max(hi - length, lo), count)
        return [(float(l), float(l + length)) for l in lefts]

    return _make


def truth_ids(dataset: IntervalDataset, query: tuple[float, float]) -> set[int]:
    """Ground-truth result set of a query, by brute force."""
    return set(int(i) for i in dataset.overlap_indices(query[0], query[1]))


@pytest.fixture
def ground_truth():
    """The brute-force ground-truth helper as a fixture."""
    return truth_ids
