"""Counting and reporting correctness of the AIT against the brute-force oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, Interval, IntervalDataset, InvalidQueryError


class TestCounting:
    def test_count_matches_oracle_on_random_queries(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=40, extent=0.05):
            assert tree.count(query) == random_dataset.overlap_count(*query)

    def test_count_various_extents(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        for extent in (0.01, 0.1, 0.5, 1.0):
            for query in make_queries(random_dataset, count=10, extent=extent, seed=int(extent * 100)):
                assert tree.count(query) == random_dataset.overlap_count(*query)

    def test_count_query_covering_everything(self, random_dataset):
        tree = AIT(random_dataset)
        lo, hi = random_dataset.domain()
        assert tree.count((lo - 1.0, hi + 1.0)) == len(random_dataset)

    def test_count_empty_region(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        assert tree.count((hi + 10.0, hi + 20.0)) == 0

    def test_count_point_query_equals_stabbing(self, random_dataset):
        tree = AIT(random_dataset)
        rng = np.random.default_rng(0)
        lo, hi = random_dataset.domain()
        for point in rng.uniform(lo, hi, 20):
            assert tree.count((point, point)) == random_dataset.overlap_count(point, point)

    def test_count_accepts_interval_objects(self, random_dataset):
        tree = AIT(random_dataset)
        lo, hi = random_dataset.domain()
        q = Interval(lo, (lo + hi) / 2)
        assert tree.count(q) == random_dataset.overlap_count(q.left, q.right)

    def test_count_boundary_touching(self):
        tree = AIT(IntervalDataset([0.0, 10.0], [5.0, 20.0]))
        assert tree.count((5.0, 10.0)) == 2
        assert tree.count((5.0001, 9.9999)) == 0 + 0  # neither touches
        assert tree.count((20.0, 30.0)) == 1

    def test_invalid_query_raises(self, random_dataset):
        tree = AIT(random_dataset)
        with pytest.raises(InvalidQueryError):
            tree.count((5.0, 1.0))


class TestReporting:
    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=40, extent=0.08):
            assert set(tree.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_report_has_no_duplicates(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=20, extent=0.3):
            ids = tree.report(query)
            assert len(ids) == len(set(ids.tolist()))

    def test_report_on_point_dataset(self, make_random_dataset, make_queries, ground_truth):
        dataset = make_random_dataset(n=400, seed=9, kind="points")
        tree = AIT(dataset)
        for query in make_queries(dataset, count=20):
            assert set(tree.report(query).tolist()) == ground_truth(dataset, query)

    def test_report_on_long_interval_dataset(self, make_random_dataset, make_queries, ground_truth):
        dataset = make_random_dataset(n=400, seed=10, kind="long")
        tree = AIT(dataset)
        for query in make_queries(dataset, count=20):
            assert set(tree.report(query).tolist()) == ground_truth(dataset, query)

    def test_report_intervals_returns_interval_objects(self, random_dataset):
        tree = AIT(random_dataset)
        lo, hi = random_dataset.domain()
        intervals = tree.report_intervals((lo, (lo + hi) / 4))
        assert all(isinstance(x, Interval) for x in intervals)
        assert len(intervals) == tree.count((lo, (lo + hi) / 4))

    def test_report_empty_region_returns_empty_array(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        out = tree.report((hi + 1.0, hi + 2.0))
        assert out.shape == (0,)
        assert out.dtype == np.int64

    def test_paper_example_query(self, paper_example_dataset):
        tree = AIT(paper_example_dataset)
        # Query straddling the middle of the domain (case 3 at the root).
        result = set(tree.report((3.5, 8.5)).tolist())
        expected = set(paper_example_dataset.overlap_indices(3.5, 8.5).tolist())
        assert result == expected
