"""Tests for the cumulative-sum (prefix-sum) weighted sampler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import CumulativeSampler, InvalidWeightError
from repro.sampling import (
    cumulative_sample,
    prefix_sums,
    range_weight,
    resolve_rng,
    sample_from_prefix_range,
)


class TestPrefixSums:
    def test_basic(self):
        np.testing.assert_allclose(prefix_sums([1.0, 2.0, 3.0]), [1.0, 3.0, 6.0])

    def test_empty(self):
        assert prefix_sums([]).shape == (0,)

    def test_negative_raises(self):
        with pytest.raises(InvalidWeightError):
            prefix_sums([1.0, -2.0])

    def test_two_dimensional_raises(self):
        with pytest.raises(InvalidWeightError):
            prefix_sums(np.ones((2, 2)))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=50))
    def test_prefix_is_monotone_and_ends_at_total(self, weights):
        prefix = prefix_sums(weights)
        assert np.all(np.diff(prefix) >= -1e-9)
        assert prefix[-1] == pytest.approx(sum(weights), rel=1e-9, abs=1e-9)


class TestRangeWeight:
    def test_full_and_partial_ranges(self):
        prefix = prefix_sums([1.0, 2.0, 3.0, 4.0])
        assert range_weight(prefix, 0, 3) == pytest.approx(10.0)
        assert range_weight(prefix, 1, 2) == pytest.approx(5.0)
        assert range_weight(prefix, 2, 2) == pytest.approx(3.0)

    def test_empty_range_is_zero(self):
        prefix = prefix_sums([1.0, 2.0])
        assert range_weight(prefix, 1, 0) == 0.0


class TestSampleFromPrefixRange:
    def test_stays_inside_range(self):
        prefix = prefix_sums([1.0, 2.0, 3.0, 4.0, 5.0])
        rng = resolve_rng(0)
        draws = [sample_from_prefix_range(prefix, 1, 3, rng) for _ in range(500)]
        assert set(draws) <= {1, 2, 3}

    def test_empty_range_raises(self):
        prefix = prefix_sums([1.0, 2.0])
        with pytest.raises(InvalidWeightError):
            sample_from_prefix_range(prefix, 1, 0, resolve_rng(0))

    def test_zero_weight_range_raises(self):
        prefix = prefix_sums([1.0, 0.0, 0.0, 2.0])
        with pytest.raises(InvalidWeightError):
            sample_from_prefix_range(prefix, 1, 2, resolve_rng(0))

    def test_distribution_proportional_to_weights_within_range(self):
        weights = np.array([100.0, 1.0, 3.0, 6.0, 100.0])
        prefix = prefix_sums(weights)
        rng = resolve_rng(5)
        draws = np.array([sample_from_prefix_range(prefix, 1, 3, rng) for _ in range(20_000)])
        freq = np.bincount(draws, minlength=5)[1:4] / draws.shape[0]
        np.testing.assert_allclose(freq, weights[1:4] / weights[1:4].sum(), atol=0.02)


class TestCumulativeSampler:
    def test_requires_positive_total(self):
        with pytest.raises(InvalidWeightError):
            CumulativeSampler([0.0, 0.0])
        with pytest.raises(InvalidWeightError):
            CumulativeSampler([])

    def test_len_and_total(self):
        sampler = CumulativeSampler([1.0, 2.0, 3.0])
        assert len(sampler) == 3
        assert sampler.total_weight == 6.0

    def test_sample_many_distribution(self):
        weights = np.array([1.0, 9.0])
        sampler = CumulativeSampler(weights)
        draws = sampler.sample_many(40_000, resolve_rng(1))
        freq = np.bincount(draws, minlength=2) / draws.shape[0]
        np.testing.assert_allclose(freq, weights / weights.sum(), atol=0.02)

    def test_zero_weight_entries_never_sampled(self):
        sampler = CumulativeSampler([0.0, 5.0, 0.0])
        draws = sampler.sample_many(5_000, resolve_rng(2))
        assert set(np.unique(draws)) == {1}

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            CumulativeSampler([1.0]).sample_many(-5, resolve_rng(0))

    def test_helper_function_deterministic(self):
        a = cumulative_sample([1.0, 2.0], 20, random_state=3)
        b = cumulative_sample([1.0, 2.0], 20, random_state=3)
        np.testing.assert_array_equal(a, b)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30).filter(
            lambda w: sum(w) > 0
        )
    )
    def test_samples_always_have_positive_weight(self, weights):
        sampler = CumulativeSampler(weights)
        draws = sampler.sample_many(100, resolve_rng(7))
        assert all(weights[i] > 0 for i in draws)
