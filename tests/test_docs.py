"""The documentation subsystem must not rot.

Three enforcement layers, shared with ``scripts/check_docs.py`` (the CI /
standalone entry point):

* every ``>>>`` docstring example in the public API modules runs under
  :mod:`doctest` and must reproduce its output;
* every relative markdown link in ``README.md`` and ``docs/*.md`` must
  resolve to an existing file;
* every fenced ```python`` snippet in those files must execute cleanly.
"""

from __future__ import annotations

import doctest
import importlib
import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_docs_directory_is_complete():
    for required in ("ARCHITECTURE.md", "API.md", "REPRODUCING.md"):
        assert (REPO_ROOT / "docs" / required).exists(), f"docs/{required} is missing"


@pytest.mark.parametrize("module_name", check_docs.DOCTEST_MODULES)
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


def test_public_api_docstrings_carry_examples():
    """The docstring sweep: key public classes must have runnable examples."""
    from repro import AIT, AITV, AWIT, FlatAIT, IntervalDataset, RequestGateway, ShardedEngine
    from repro.core.base import IntervalIndex, SamplingIndex

    for cls in (
        AIT,
        AITV,
        AWIT,
        FlatAIT,
        IntervalDataset,
        RequestGateway,
        ShardedEngine,
        IntervalIndex,
        SamplingIndex,
    ):
        assert cls.__doc__ and ">>>" in cls.__doc__, (
            f"{cls.__name__} lost its runnable docstring example"
        )


@pytest.mark.parametrize("doc", check_docs.DOC_FILES)
def test_markdown_links_resolve(doc):
    with redirect_stdout(io.StringIO()):
        failures = check_docs.check_links((doc,))
    assert not failures, failures


@pytest.mark.parametrize("doc", check_docs.DOC_FILES)
def test_markdown_python_snippets_execute(doc):
    with redirect_stdout(io.StringIO()):
        failures = check_docs.run_snippets((doc,))
    assert not failures, failures


def test_check_docs_cli_runs_clean():
    """The standalone gate itself must exit 0 on the committed tree."""
    with redirect_stdout(io.StringIO()):
        assert check_docs.main(["links"]) == 0
