"""The documentation subsystem must not rot.

Enforcement layers, shared with ``scripts/check_docs.py`` (the CI /
standalone entry point):

* every ``>>>`` docstring example in the public API modules runs under
  :mod:`doctest` and must reproduce its output;
* every relative markdown link in ``README.md`` and ``docs/*.md`` must
  resolve to an existing file;
* every fenced ```python`` snippet in those files must execute cleanly;
* every knob row in ``docs/TUNING.md`` must resolve against the live
  signatures / value registries;
* the experiments index block in ``docs/REPRODUCING.md`` must equal the
  registry rendering;
* the constructor signatures ``docs/API.md`` spells out must match the
  live ``inspect.signature`` rendering (parameter names, order, and
  defaults).
"""

from __future__ import annotations

import doctest
import importlib
import importlib.util
import io
from contextlib import redirect_stdout
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "scripts" / "check_docs.py"
)
check_docs = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_docs)


def test_docs_directory_is_complete():
    for required in ("ARCHITECTURE.md", "API.md", "REPRODUCING.md", "TUNING.md"):
        assert (REPO_ROOT / "docs" / required).exists(), f"docs/{required} is missing"


@pytest.mark.parametrize("module_name", check_docs.DOCTEST_MODULES)
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module_name}"


def test_public_api_docstrings_carry_examples():
    """The docstring sweep: key public classes must have runnable examples."""
    from repro import AIT, AITV, AWIT, FlatAIT, IntervalDataset, RequestGateway, ShardedEngine
    from repro.core.base import IntervalIndex, SamplingIndex

    for cls in (
        AIT,
        AITV,
        AWIT,
        FlatAIT,
        IntervalDataset,
        RequestGateway,
        ShardedEngine,
        IntervalIndex,
        SamplingIndex,
    ):
        assert cls.__doc__ and ">>>" in cls.__doc__, (
            f"{cls.__name__} lost its runnable docstring example"
        )


@pytest.mark.parametrize("doc", check_docs.DOC_FILES)
def test_markdown_links_resolve(doc):
    with redirect_stdout(io.StringIO()):
        failures = check_docs.check_links((doc,))
    assert not failures, failures


@pytest.mark.parametrize("doc", check_docs.DOC_FILES)
def test_markdown_python_snippets_execute(doc):
    with redirect_stdout(io.StringIO()):
        failures = check_docs.run_snippets((doc,))
    assert not failures, failures


def test_tuning_knobs_resolve():
    """Every knob named in docs/TUNING.md must exist in the live code."""
    with redirect_stdout(io.StringIO()):
        failures = check_docs.check_knobs()
    assert not failures, failures


def test_tuning_knob_check_catches_a_renamed_knob():
    """The knob gate must actually reject rows naming nonexistent knobs."""
    assert "num_shards" in check_docs._resolvable_knobs()
    assert "definitely_not_a_knob" not in check_docs._resolvable_knobs()
    match = check_docs._KNOB_ROW.match("| `block_size` (queries per tile) | ... |")
    assert match is not None and match.group(1) == "block_size"


def test_experiments_index_in_sync():
    """The REPRODUCING.md index block must equal the registry rendering."""
    with redirect_stdout(io.StringIO()):
        failures = check_docs.check_experiments_index()
    assert not failures, failures


def _render_signature(name: str, target) -> str:
    """``name(param, key=default, ...)`` exactly as inspect sees the callable."""
    import inspect

    rendered = []
    for param in inspect.signature(target).parameters.values():
        if param.name == "self":
            continue
        if param.default is inspect.Parameter.empty:
            rendered.append(param.name)
        else:
            rendered.append(f"{param.name}={param.default!r}")
    return f"{name}({', '.join(rendered)})"


def test_api_md_signatures_match_code():
    """docs/API.md's spelled-out call signatures must not drift from the code.

    The comparison normalises whitespace (API.md wraps long signatures) and
    quote style (API.md uses double quotes, ``repr`` single quotes); names,
    order, and default values must match verbatim.
    """
    from repro.service import ProcessExecutor, RequestGateway, ShardedEngine

    text = " ".join((REPO_ROOT / "docs" / "API.md").read_text().split())
    text = text.replace('"', "'")
    for name, target in (
        ("ShardedEngine", ShardedEngine.__init__),
        ("ShardedEngine.open", ShardedEngine.open),
        ("save_snapshot", ShardedEngine.save_snapshot),
        ("ProcessExecutor", ProcessExecutor.__init__),
        ("RequestGateway", RequestGateway.__init__),
    ):
        expected = _render_signature(name, target)
        assert expected in text, (
            f"docs/API.md does not spell the current signature of {name}; "
            f"expected to find (modulo wrapping/quotes): {expected}"
        )


def test_check_docs_cli_runs_clean():
    """The standalone gate itself must exit 0 on the committed tree."""
    with redirect_stdout(io.StringIO()):
        assert check_docs.main(["links", "knobs", "experiments"]) == 0
