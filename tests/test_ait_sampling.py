"""Sampling correctness of the AIT: membership, determinism and uniformity (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, EmptyResultError, InvalidQueryError
from repro.stats import chi_square_uniformity, total_variation_distance


class TestBasicSampling:
    def test_samples_are_members_of_result_set(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        for query in make_queries(random_dataset, count=20):
            truth = ground_truth(random_dataset, query)
            if not truth:
                continue
            samples = tree.sample(query, 200, random_state=1)
            assert set(samples.tolist()) <= truth

    def test_sample_size_is_respected(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        for s in (1, 7, 100, 1234):
            assert tree.sample(query, s, random_state=0).shape == (s,)

    def test_sample_zero_returns_empty(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        assert tree.sample(query, 0, random_state=0).shape == (0,)

    def test_sampling_is_deterministic_given_seed(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        a = tree.sample(query, 100, random_state=99)
        b = tree.sample(query, 100, random_state=99)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_give_different_samples(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.3)[0]
        a = tree.sample(query, 100, random_state=1)
        b = tree.sample(query, 100, random_state=2)
        assert not np.array_equal(a, b)

    def test_empty_result_returns_empty_by_default(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        assert tree.sample((hi + 5.0, hi + 6.0), 10, random_state=0).shape == (0,)

    def test_empty_result_raises_when_requested(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        with pytest.raises(EmptyResultError):
            tree.sample((hi + 5.0, hi + 6.0), 10, random_state=0, on_empty="raise")

    def test_invalid_on_empty_value(self, random_dataset):
        tree = AIT(random_dataset)
        _, hi = random_dataset.domain()
        with pytest.raises(ValueError):
            tree.sample((hi + 5.0, hi + 6.0), 10, on_empty="bogus")

    def test_negative_sample_size_raises(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        with pytest.raises(InvalidQueryError):
            tree.sample(query, -5)

    def test_sample_intervals_returns_interval_objects(self, random_dataset, make_queries):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        intervals = tree.sample_intervals(query, 20, random_state=0)
        assert len(intervals) == 20
        assert all(x.left <= query[1] and query[0] <= x.right for x in intervals)

    def test_single_member_result_always_returns_it(self):
        from repro import IntervalDataset

        dataset = IntervalDataset([0.0, 100.0], [1.0, 101.0])
        tree = AIT(dataset)
        samples = tree.sample((99.5, 100.5), 50, random_state=0)
        assert set(samples.tolist()) == {1}


class TestUniformity:
    """Statistical validation of Theorem 3 (each member has probability 1/|q ∩ X|)."""

    def test_chi_square_does_not_reject_uniformity(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.15, seed=4)[0]
        truth = sorted(ground_truth(random_dataset, query))
        assert len(truth) >= 10
        samples = tree.sample(query, 40 * len(truth), random_state=7)
        fit = chi_square_uniformity(samples.tolist(), truth)
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_every_member_eventually_sampled(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.1, seed=8)[0]
        truth = ground_truth(random_dataset, query)
        samples = tree.sample(query, 60 * max(1, len(truth)), random_state=3)
        assert set(samples.tolist()) == truth

    def test_total_variation_distance_is_small(self, random_dataset, make_queries, ground_truth):
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.2, seed=9)[0]
        truth = sorted(ground_truth(random_dataset, query))
        samples = tree.sample(query, 50 * len(truth), random_state=11)
        expected = {i: 1.0 / len(truth) for i in truth}
        assert total_variation_distance(samples.tolist(), expected) < 0.15

    def test_straddling_and_contained_intervals_sampled_alike(self):
        """Intervals partially covered by q must not be under- or over-sampled."""
        from repro import IntervalDataset

        # 5 intervals fully inside the query, 5 straddling its left boundary.
        lefts = [10.0, 11.0, 12.0, 13.0, 14.0, 0.0, 1.0, 2.0, 3.0, 4.0]
        rights = [15.0, 16.0, 17.0, 18.0, 19.0, 12.0, 12.5, 13.0, 13.5, 14.0]
        dataset = IntervalDataset(lefts, rights)
        tree = AIT(dataset)
        query = (10.0, 25.0)
        samples = tree.sample(query, 20_000, random_state=5)
        counts = np.bincount(samples, minlength=10)
        freq = counts / counts.sum()
        np.testing.assert_allclose(freq, np.full(10, 0.1), atol=0.02)

    def test_consecutive_queries_are_independent_draws(self, random_dataset, make_queries):
        """Two identical queries must not return correlated (identical) sample sets."""
        tree = AIT(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.3)[0]
        rng = np.random.default_rng(123)
        first = tree.sample(query, 50, random_state=rng)
        second = tree.sample(query, 50, random_state=rng)
        assert not np.array_equal(first, second)
