"""ShardedEngine correctness: shard-merge equivalence, allocation law, updates.

The acceptance bar (ISSUE 2) is that the sharded service is observationally
indistinguishable from one unsharded ``FlatAIT``: counting / reporting /
weighted counting merge *exactly*, and sampling is distribution-identical
(multinomial shard allocation composed with within-shard uniform or
weight-proportional draws), for K ∈ {1, 2, 4, 8} and under interleaved
updates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import AIT, AWIT, IntervalDataset, ShardedEngine
from repro.core.errors import (
    EmptyResultError,
    InvalidIntervalError,
    StructureStateError,
)
from repro.service import SerialExecutor, ThreadedExecutor, resolve_executor
from repro.stats import chi_square_uniformity, chi_square_weighted

SHARD_COUNTS = (1, 2, 4, 8)
POLICIES = ("round_robin", "range")


@pytest.fixture
def dataset(make_random_dataset):
    return make_random_dataset(n=700, seed=21)


@pytest.fixture
def weighted_dataset(make_random_dataset):
    return make_random_dataset(n=500, seed=22, weighted=True)


@pytest.fixture
def queries(dataset, make_queries):
    batch = []
    for extent in (0.01, 0.08, 0.4):
        batch.extend(make_queries(dataset, count=12, extent=extent, seed=int(extent * 100)))
    lo, hi = dataset.domain()
    batch.append((lo - 1.0, hi + 1.0))   # full-domain query
    batch.append((hi + 10.0, hi + 20.0))  # empty query
    return batch


# ---------------------------------------------------------------------- #
# partitioning helpers
# ---------------------------------------------------------------------- #
class TestPartitioning:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_partition_is_disjoint_and_complete(self, dataset, num_shards, policy):
        parts = dataset.partition_indices(num_shards, policy)
        assert len(parts) == num_shards
        all_ids = np.concatenate(parts)
        assert sorted(all_ids.tolist()) == list(range(len(dataset)))
        assert all(part.shape[0] >= 1 for part in parts)

    def test_range_partition_is_contiguous_in_midpoint(self, dataset):
        parts = dataset.partition_indices(4, policy="range")
        midpoints = (dataset.lefts + dataset.rights) / 2.0
        uppers = [midpoints[part].max() for part in parts]
        lowers = [midpoints[part].min() for part in parts]
        for previous, current in zip(uppers, lowers[1:]):
            assert previous <= current

    def test_partition_rejects_bad_arguments(self, dataset):
        with pytest.raises(ValueError):
            dataset.partition_indices(0)
        with pytest.raises(ValueError):
            dataset.partition_indices(len(dataset) + 1)
        with pytest.raises(ValueError):
            dataset.partition_indices(2, policy="hash")


# ---------------------------------------------------------------------- #
# static equivalence vs a single unsharded FlatAIT
# ---------------------------------------------------------------------- #
class TestShardMergeEquivalence:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_count_many_exact(self, dataset, queries, num_shards, policy):
        engine = ShardedEngine(dataset, num_shards=num_shards, policy=policy)
        single = AIT(dataset).flat()
        assert np.array_equal(engine.count_many(queries), single.count_many(queries))

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_report_many_same_result_sets(self, dataset, queries, num_shards, policy):
        engine = ShardedEngine(dataset, num_shards=num_shards, policy=policy)
        single = AIT(dataset).flat()
        for merged, expected in zip(engine.report_many(queries), single.report_many(queries)):
            assert merged.dtype == np.int64
            assert sorted(merged.tolist()) == sorted(expected.tolist())

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_total_weight_many_exact(self, weighted_dataset, make_queries, num_shards):
        engine = ShardedEngine(weighted_dataset, num_shards=num_shards)
        assert engine.is_weighted
        single = AWIT(weighted_dataset).flat()
        batch = make_queries(weighted_dataset, count=25, extent=0.1, seed=5)
        assert np.allclose(
            engine.total_weight_many(batch), single.total_weight_many(batch)
        )

    def test_unweighted_total_weight_equals_counts(self, dataset, queries):
        engine = ShardedEngine(dataset, num_shards=3)
        assert np.array_equal(
            engine.total_weight_many(queries),
            engine.count_many(queries).astype(np.float64),
        )

    def test_scalar_wrappers_match_batch(self, dataset, queries):
        engine = ShardedEngine(dataset, num_shards=4)
        query = queries[0]
        assert engine.count(query) == int(engine.count_many([query])[0])
        assert engine.report(query).tolist() == engine.report_many([query])[0].tolist()
        assert len(engine.sample(query, 5, random_state=0)) in (0, 5)

    def test_empty_batch(self, dataset):
        engine = ShardedEngine(dataset, num_shards=2)
        assert engine.count_many([]).shape == (0,)
        assert engine.report_many([]) == []
        assert engine.sample_many([], 4) == []


# ---------------------------------------------------------------------- #
# sampling distribution (multinomial shard allocation)
# ---------------------------------------------------------------------- #
class TestSamplingDistribution:
    @pytest.mark.parametrize("num_shards", (2, 4, 8))
    def test_uniform_sampling_chi_square(self, dataset, num_shards):
        engine = ShardedEngine(dataset, num_shards=num_shards)
        lo, hi = dataset.domain()
        query = (lo + (hi - lo) * 0.3, lo + (hi - lo) * 0.45)
        population = dataset.overlap_indices(*query).tolist()
        assert len(population) > 5
        draws = np.concatenate(
            engine.sample_many([query] * 40, 300, random_state=1234)
        )
        fit = chi_square_uniformity(draws.tolist(), population)
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_weighted_sampling_chi_square(self, weighted_dataset):
        engine = ShardedEngine(weighted_dataset, num_shards=4)
        lo, hi = weighted_dataset.domain()
        query = (lo + (hi - lo) * 0.2, lo + (hi - lo) * 0.5)
        population = weighted_dataset.overlap_indices(*query).tolist()
        assert len(population) > 5
        weights = weighted_dataset.weights[population]
        draws = np.concatenate(
            engine.sample_many([query] * 40, 300, random_state=99)
        )
        fit = chi_square_weighted(draws.tolist(), population, weights.tolist())
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_shard_allocation_follows_multinomial_proportions(self, dataset):
        """Which-shard frequencies must match per-shard overlap mass exactly."""
        num_shards = 4
        engine = ShardedEngine(dataset, num_shards=num_shards)
        lo, hi = dataset.domain()
        query = (lo, hi)
        per_shard_counts = np.array(
            [shard.snapshot.count(query) for shard in engine.shards], dtype=np.float64
        )
        probabilities = per_shard_counts / per_shard_counts.sum()
        draws = np.concatenate(engine.sample_many([query] * 30, 400, random_state=7))
        owner = np.array([engine.shard_of(int(i)) for i in draws])
        observed = np.bincount(owner, minlength=num_shards)
        from repro.stats import chi_square_goodness_of_fit

        fit = chi_square_goodness_of_fit(
            owner.tolist(), {k: float(p) for k, p in enumerate(probabilities)}
        )
        assert not fit.rejects_uniformity(alpha=1e-4)
        # every shard with mass must actually be hit on a sample this large
        assert np.all(observed[per_shard_counts > 0] > 0)

    def test_sample_rows_not_grouped_by_shard(self, dataset):
        """Prefixes of a row must be unbiased: position must not encode the shard."""
        engine = ShardedEngine(dataset, num_shards=4)
        lo, hi = dataset.domain()
        rows = engine.sample_many([(lo, hi)] * 200, 50, random_state=11)
        first_owner = np.array([engine.shard_of(int(row[0])) for row in rows])
        last_owner = np.array([engine.shard_of(int(row[-1])) for row in rows])
        # with 4 populated shards, a shard-grouped row would pin position 0
        # (and position -1) to the extreme shards of the merge order
        assert len(set(first_owner.tolist())) > 1
        assert len(set(last_owner.tolist())) > 1

    def test_sample_on_empty_modes(self, dataset):
        engine = ShardedEngine(dataset, num_shards=2)
        _, hi = dataset.domain()
        empty_query = (hi + 5.0, hi + 6.0)
        assert engine.sample(empty_query, 3).shape == (0,)
        with pytest.raises(EmptyResultError):
            engine.sample(empty_query, 3, on_empty="raise")
        with pytest.raises(ValueError):
            engine.sample(empty_query, 3, on_empty="panic")

    def test_sample_size_zero(self, dataset, queries):
        engine = ShardedEngine(dataset, num_shards=2)
        assert all(row.shape == (0,) for row in engine.sample_many(queries, 0))


# ---------------------------------------------------------------------- #
# updates: buffered delta log + versioned snapshot refresh
# ---------------------------------------------------------------------- #
class TestUpdates:
    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("num_shards", (1, 4))
    def test_update_then_query_matches_oracle(
        self, make_random_dataset, make_queries, num_shards, policy
    ):
        dataset = make_random_dataset(n=400, seed=31)
        engine = ShardedEngine(dataset, num_shards=num_shards, policy=policy)
        rng = np.random.default_rng(17)
        lefts = list(dataset.lefts)
        rights = list(dataset.rights)
        active = set(range(len(dataset)))

        queries = make_queries(dataset, count=10, extent=0.15, seed=8)
        for step in range(6):
            for _ in range(25):
                left = float(rng.uniform(0.0, 1000.0))
                right = left + float(rng.exponential(25.0))
                new_id = engine.insert((left, right))
                assert new_id == len(lefts)
                lefts.append(left)
                rights.append(right)
                active.add(new_id)
            removable = list(active)
            for victim in rng.choice(len(removable), size=10, replace=False):
                target = removable[int(victim)]
                if engine.delete(target):
                    active.discard(target)
            for query in queries:
                truth = {
                    i
                    for i in active
                    if lefts[i] <= query[1] and query[0] <= rights[i]
                }
                assert engine.count(query) == len(truth)
                assert set(engine.report(query).tolist()) == truth
                sampled = engine.sample(query, 20, random_state=step)
                if truth:
                    assert set(sampled.tolist()) <= truth
                else:
                    assert sampled.shape == (0,)
        assert engine.size == len(active)

    def test_updates_match_unsharded_flat_engine(self, make_random_dataset, make_queries):
        """After interleaved updates the engine still equals one FlatAIT."""
        dataset = make_random_dataset(n=300, seed=41)
        engine = ShardedEngine(dataset, num_shards=4)
        rng = np.random.default_rng(5)
        inserted = []
        for _ in range(80):
            left = float(rng.uniform(0.0, 1000.0))
            right = left + float(rng.exponential(30.0))
            inserted.append((left, right))
            engine.insert((left, right))
        deleted = [int(i) for i in rng.choice(300, size=60, replace=False)]
        for victim in deleted:
            assert engine.delete(victim)

        survivors = sorted(set(range(300)) - set(deleted))
        reference_lefts = list(dataset.lefts[survivors]) + [p[0] for p in inserted]
        reference_rights = list(dataset.rights[survivors]) + [p[1] for p in inserted]
        reference = AIT(IntervalDataset(reference_lefts, reference_rights)).flat()
        queries = make_queries(dataset, count=20, extent=0.1, seed=3)
        assert np.array_equal(
            engine.count_many(queries), reference.count_many(queries)
        )

    def test_refresh_is_lazy_and_versioned(self, dataset):
        engine = ShardedEngine(dataset, num_shards=2)
        versions_before = engine.versions()
        engine.insert((0.0, 1.0))
        assert engine.pending_ops() == 1
        assert engine.versions() == versions_before  # nothing applied yet
        engine.count((0.0, 0.5))  # batch boundary triggers the refresh
        assert engine.pending_ops() == 0
        changed = [
            after > before for before, after in zip(versions_before, engine.versions())
        ]
        assert sum(changed) == 1  # only the owning shard re-snapshotted

    def test_delete_semantics(self, dataset):
        engine = ShardedEngine(dataset, num_shards=2)
        assert engine.delete(0) is True
        assert engine.delete(0) is False  # double delete
        assert engine.delete(10**9) is False  # unknown id
        assert engine.delete("zero") is False  # junk
        assert engine.size == len(dataset) - 1
        assert engine.count_many([(dataset.lefts[0], dataset.rights[0])]) is not None

    def test_insert_validation(self, dataset):
        engine = ShardedEngine(dataset, num_shards=2)
        with pytest.raises(InvalidIntervalError):
            engine.insert((5.0, 1.0))
        with pytest.raises(InvalidIntervalError):
            engine.insert("not-an-interval")

    def test_weighted_engine_rejects_updates(self, weighted_dataset):
        engine = ShardedEngine(weighted_dataset, num_shards=2)
        with pytest.raises(StructureStateError):
            engine.insert((0.0, 1.0))
        with pytest.raises(StructureStateError):
            engine.delete(0)

    def test_range_policy_routes_inserts_to_owning_shard(self, make_random_dataset):
        dataset = make_random_dataset(n=200, seed=51)
        engine = ShardedEngine(dataset, num_shards=4, policy="range")
        lo, hi = dataset.domain()
        low_id = engine.insert((lo, lo + 1.0))
        high_id = engine.insert((hi - 1.0, hi))
        assert engine.shard_of(low_id) == 0
        assert engine.shard_of(high_id) == engine.num_shards - 1


# ---------------------------------------------------------------------- #
# executors
# ---------------------------------------------------------------------- #
class TestExecutors:
    def test_threaded_matches_serial_exactly(self, dataset, queries):
        serial = ShardedEngine(dataset, num_shards=4)
        with ShardedEngine(dataset, num_shards=4, executor="threads") as threaded:
            assert np.array_equal(
                serial.count_many(queries), threaded.count_many(queries)
            )
            for a, b in zip(serial.report_many(queries), threaded.report_many(queries)):
                assert np.array_equal(a, b)
            sample_a = serial.sample_many(queries, 9, random_state=77)
            sample_b = threaded.sample_many(queries, 9, random_state=77)
            for a, b in zip(sample_a, sample_b):
                assert np.array_equal(a, b)

    def test_custom_executor_object(self, dataset, queries):
        class CountingExecutor(SerialExecutor):
            calls = 0

            def map(self, fn, items):
                CountingExecutor.calls += 1
                return super().map(fn, items)

        engine = ShardedEngine(dataset, num_shards=2, executor=CountingExecutor())
        engine.count_many(queries)
        assert CountingExecutor.calls == 1

    def test_resolve_executor_errors(self):
        with pytest.raises(TypeError):
            resolve_executor(42)
        executor, owned = resolve_executor("threads")
        assert isinstance(executor, ThreadedExecutor) and owned
        executor.shutdown()

    def test_engine_repr_and_introspection(self, dataset):
        engine = ShardedEngine(dataset, num_shards=4)
        assert engine.num_shards == 4
        assert sum(engine.shard_sizes()) == len(dataset)
        assert len(engine) == len(dataset)
        assert engine.policy == "round_robin"
        assert engine.nbytes() > 0
        assert "shards=4" in repr(engine)
        with pytest.raises(KeyError):
            engine.shard_of(-1)


# ---------------------------------------------------------------------- #
# bulk write path: insert_many / delete_many + incremental shard refresh
# ---------------------------------------------------------------------- #
class TestBulkWrites:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_bulk_ops_match_scalar_loop(self, dataset, queries, policy):
        bulk = ShardedEngine(dataset, num_shards=4, policy=policy)
        scalar = ShardedEngine(dataset, num_shards=4, policy=policy)
        rng = np.random.default_rng(51)
        lefts = rng.uniform(0.0, 1000.0, 60)
        rights = lefts + rng.exponential(25.0, 60)
        bulk_ids = bulk.insert_many(lefts, rights)
        scalar_ids = [scalar.insert((l, r)) for l, r in zip(lefts, rights)]
        assert bulk_ids.tolist() == scalar_ids
        victims = rng.choice(len(dataset) + 60, size=80, replace=True).tolist()
        bulk_flags = bulk.delete_many(victims)
        scalar_flags = [scalar.delete(v) for v in victims]
        assert bulk_flags.tolist() == scalar_flags
        assert bulk.size == scalar.size
        assert np.array_equal(bulk.count_many(queries), scalar.count_many(queries))
        for mine, theirs in zip(bulk.report_many(queries), scalar.report_many(queries)):
            assert set(mine.tolist()) == set(theirs.tolist())

    def test_bulk_insert_validation(self, dataset):
        engine = ShardedEngine(dataset, num_shards=2)
        size = engine.size
        with pytest.raises(InvalidIntervalError):
            engine.insert_many([0.0, 5.0], [1.0, 4.0])
        with pytest.raises(InvalidIntervalError):
            engine.insert_many([0.0], [1.0, 2.0])
        assert engine.size == size
        assert engine.insert_many([], []).shape == (0,)

    def test_weighted_engine_rejects_bulk_writes(self, weighted_dataset):
        engine = ShardedEngine(weighted_dataset, num_shards=2)
        with pytest.raises(StructureStateError):
            engine.insert_many([0.0], [1.0])
        with pytest.raises(StructureStateError):
            engine.delete_many([0])

    def test_refresh_replays_delta_log_without_full_snapshot_rebuild(
        self, make_random_dataset
    ):
        """A bounded delta log patches shard snapshots incrementally."""
        dataset = make_random_dataset(n=4000, seed=52)
        engine = ShardedEngine(dataset, num_shards=2)
        engine.refresh()
        full_builds_before = [s.tree.snapshot_full_builds for s in engine.shards]
        rng = np.random.default_rng(53)
        lefts = rng.uniform(0.0, 1000.0, 40)
        rights = lefts + rng.exponential(20.0, 40)
        engine.insert_many(lefts, rights)
        engine.delete_many(rng.choice(4000, size=30, replace=False))
        assert engine.pending_ops() > 0
        engine.refresh()
        assert engine.pending_ops() == 0
        full_builds_after = [s.tree.snapshot_full_builds for s in engine.shards]
        assert full_builds_after == full_builds_before  # no full re-flatten
        assert all(
            s.tree.snapshot_incremental_refreshes >= 1 for s in engine.shards
        )

    def test_mixed_bulk_and_scalar_log_replay(self, make_random_dataset, make_queries):
        """Interleaved scalar and bulk ops replay in log order at refresh."""
        dataset = make_random_dataset(n=500, seed=54)
        engine = ShardedEngine(dataset, num_shards=3)
        first = engine.insert((10.0, 20.0))
        batch = engine.insert_many([30.0, 40.0], [35.0, 45.0])
        assert engine.delete(first)
        assert engine.delete_many([int(batch[0])]).tolist() == [True]
        last = engine.insert((50.0, 60.0))
        engine.refresh()
        survivors = {int(batch[1]), last}
        reported = set(engine.report((0.0, 100.0)).tolist())
        assert survivors <= reported
        assert first not in reported and int(batch[0]) not in reported
        assert engine.size == len(dataset) + 4 - 2


class TestParallelRefreshFailure:
    """refresh(parallel=True) must never leave the engine half-refreshed."""

    def _spread_writes(self, engine):
        rng = np.random.default_rng(17)
        lefts = rng.uniform(0.0, 900.0, 64)
        engine.insert_many(lefts, lefts + 10.0)
        assert sum(1 for s in engine._shards if s.pending_ops) > 1

    def test_shard_failure_propagates_after_all_shards_settle(self, dataset):
        class OneShotFailure(SerialExecutor):
            """Delivers one shard task's result as an injected exception."""

            def map(self, fn, items):
                items = list(items)
                return [
                    RuntimeError("injected shard failure") if i == 1 else fn(item)
                    for i, item in enumerate(items)
                ]

        engine = ShardedEngine(dataset, num_shards=4, executor=OneShotFailure())
        self._spread_writes(engine)
        failing = [s for s in engine._shards if s.pending_ops][1]
        with pytest.raises(RuntimeError, match=r"injected shard failure"):
            engine.refresh(parallel=True)
        # every other shard settled; the failing shard kept its buffered ops
        for shard in engine._shards:
            if shard is failing:
                assert shard.pending_ops > 0
            else:
                assert shard.pending_ops == 0
        # the failure is retryable: a healthy pass drains the survivor
        engine.refresh()
        assert all(s.pending_ops == 0 for s in engine._shards)
        assert engine.size == len(dataset) + 64

    def test_executor_failure_falls_back_to_serial_sweep(self, dataset):
        class ExplodingExecutor(SerialExecutor):
            exploded = False

            def map(self, fn, items):
                if not ExplodingExecutor.exploded:
                    ExplodingExecutor.exploded = True
                    raise BrokenPipeError("executor died mid-fan-out")
                return super().map(fn, items)

        engine = ShardedEngine(dataset, num_shards=4, executor=ExplodingExecutor())
        self._spread_writes(engine)
        with pytest.raises(BrokenPipeError, match=r"executor died"):
            engine.refresh(parallel=True)
        # the serial sweep drained every shard before the error surfaced
        assert all(s.pending_ops == 0 for s in engine._shards)
        assert engine.size == len(dataset) + 64
        queries = np.array([[0.0, 1000.0]])
        assert engine.count_many(queries)[0] == engine.size
