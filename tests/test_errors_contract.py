"""Contract tests for the public exception hierarchy.

Every validation error exported from ``repro.core.errors`` is exercised here:
one parametrised case per raise site, asserting both the exception *type* and
the *message* so error-handling code downstream can rely on them.  The
hierarchy tests pin the dual-inheritance contract (each domain error also
derives from the matching builtin) that lets callers catch either the repro
type or the builtin they already handle.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AIT,
    EmptyDatasetError,
    EmptyResultError,
    GatewayClosedError,
    GatewayOverloadError,
    Interval,
    IntervalDataset,
    InvalidIntervalError,
    InvalidQueryError,
    InvalidWeightError,
    PersistenceError,
    ReproError,
    RequestGateway,
    ShardedEngine,
    SnapshotCorruptError,
    StructureStateError,
    UnsupportedOperationError,
    WALCorruptError,
    WorkerTimeoutError,
)
from repro.core.query import coerce_query, coerce_query_batch, validate_sample_size
from repro.kernels import get_backend, resolve_backend
from repro.service import EXECUTOR_NAMES, resolve_executor


def _dataset(n: int = 8) -> IntervalDataset:
    lefts = np.arange(n, dtype=np.float64)
    return IntervalDataset(lefts, lefts + 2.0)


# --------------------------------------------------------------------------- #
# hierarchy
# --------------------------------------------------------------------------- #
class TestHierarchy:
    @pytest.mark.parametrize(
        ("exc_type", "builtin"),
        [
            (InvalidIntervalError, ValueError),
            (InvalidQueryError, ValueError),
            (InvalidWeightError, ValueError),
            (EmptyDatasetError, ValueError),
            (EmptyResultError, LookupError),
            (StructureStateError, RuntimeError),
            (UnsupportedOperationError, NotImplementedError),
            (GatewayClosedError, RuntimeError),
            (GatewayOverloadError, RuntimeError),
            (WorkerTimeoutError, TimeoutError),
            (PersistenceError, OSError),
            (SnapshotCorruptError, OSError),
            (WALCorruptError, OSError),
        ],
    )
    def test_dual_inheritance(self, exc_type, builtin):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, builtin)

    def test_gateway_closed_is_structure_state(self):
        # Pre-1.4 callers caught StructureStateError/RuntimeError on a closed
        # gateway; GatewayClosedError must remain catchable that way.
        assert issubclass(GatewayClosedError, StructureStateError)

    def test_gateway_overload_is_structure_state(self):
        # Overload shedding (v1.8) rides the same hierarchy: callers that
        # already catch StructureStateError keep working under load shedding.
        assert issubclass(GatewayOverloadError, StructureStateError)

    def test_worker_timeout_is_builtin_timeout(self):
        # Pre-1.8 the executor op-timeout raised a bare TimeoutError; the
        # typed WorkerTimeoutError must remain catchable the old way.
        assert issubclass(WorkerTimeoutError, TimeoutError)

    def test_persistence_errors_refine_persistence_error(self):
        assert issubclass(SnapshotCorruptError, PersistenceError)
        assert issubclass(WALCorruptError, PersistenceError)


# --------------------------------------------------------------------------- #
# query validation (coerce_query / coerce_query_batch / validate_sample_size)
# --------------------------------------------------------------------------- #
class TestQueryValidation:
    @pytest.mark.parametrize(
        ("query", "match"),
        [
            ((5.0, 1.0), r"left endpoint must not exceed right endpoint"),
            ((float("nan"), 1.0), r"endpoints must be finite"),
            ((0.0, float("inf")), r"endpoints must be finite"),
            (("a", "b"), r"endpoints must be numbers"),
            (object(), r"must be an Interval or a \(left, right\) pair"),
            ((1.0, 2.0, 3.0), r"must be an Interval or a \(left, right\) pair"),
        ],
    )
    def test_coerce_query(self, query, match):
        with pytest.raises(InvalidQueryError, match=match):
            coerce_query(query)

    def test_coerce_query_batch_bad_dtype(self):
        bad = np.array([["a", "b"]], dtype=object)
        with pytest.raises(InvalidQueryError, match=r"numeric endpoints, got dtype"):
            coerce_query_batch(bad)

    def test_coerce_query_batch_inverted_row_reports_detail(self):
        batch = np.array([[0.0, 1.0], [9.0, 2.0]])
        with pytest.raises(InvalidQueryError, match=r"must not exceed right endpoint"):
            coerce_query_batch(batch)

    @pytest.mark.parametrize(
        ("size", "match"),
        [
            (-1, r"must be non-negative"),
            (1.5, r"must be an integer"),
            ("three", r"must be an integer"),
        ],
    )
    def test_validate_sample_size(self, size, match):
        with pytest.raises(InvalidQueryError, match=match):
            validate_sample_size(size)


# --------------------------------------------------------------------------- #
# interval / dataset construction
# --------------------------------------------------------------------------- #
class TestIntervalValidation:
    def test_interval_inverted(self):
        with pytest.raises(InvalidIntervalError, match=r"must not exceed right endpoint"):
            Interval(2.0, 1.0)

    def test_interval_nonfinite(self):
        with pytest.raises(InvalidIntervalError, match=r"must be finite"):
            Interval(float("nan"), 1.0)

    def test_interval_negative_weight(self):
        with pytest.raises(InvalidWeightError, match=r"finite and non-negative"):
            Interval(0.0, 1.0, weight=-1.0)

    @pytest.mark.parametrize(
        ("lefts", "rights", "weights", "exc_type", "match"),
        [
            ([1.0, 2.0], [3.0], None, InvalidIntervalError, r"equal length"),
            ([[1.0]], [[2.0]], None, InvalidIntervalError, r"one-dimensional"),
            ([2.0], [1.0], None, InvalidIntervalError, r"left endpoint 2.0 > right endpoint"),
            ([float("nan")], [1.0], None, InvalidIntervalError, r"must be finite"),
            ([0.0], [1.0], [1.0, 2.0], InvalidWeightError, r"same length as the endpoints"),
            ([0.0], [1.0], [-1.0], InvalidWeightError, r"finite and non-negative"),
            ([0.0], [1.0], [float("inf")], InvalidWeightError, r"finite and non-negative"),
        ],
    )
    def test_dataset_construction(self, lefts, rights, weights, exc_type, match):
        with pytest.raises(exc_type, match=match):
            IntervalDataset(lefts, rights, weights=weights)

    def test_empty_dataset_domain(self):
        with pytest.raises(EmptyDatasetError, match=r"domain\(\) of an empty dataset"):
            IntervalDataset([], []).domain()

    def test_empty_dataset_index_build(self):
        with pytest.raises(EmptyDatasetError, match=r"non-empty"):
            AIT(IntervalDataset([], []))


# --------------------------------------------------------------------------- #
# tree update validation
# --------------------------------------------------------------------------- #
class TestTreeUpdateValidation:
    def test_insert_malformed(self):
        tree = AIT(_dataset())
        with pytest.raises(InvalidIntervalError, match=r"insert expects an Interval"):
            tree.insert(object())

    def test_insert_inverted(self):
        tree = AIT(_dataset())
        with pytest.raises(InvalidIntervalError, match=r"must not exceed right endpoint"):
            tree.insert((5.0, 1.0))

    def test_insert_many_ragged(self):
        tree = AIT(_dataset())
        with pytest.raises(InvalidIntervalError, match=r"equally long columns"):
            tree.insert_many([0.0], [1.0, 2.0])

    def test_insert_many_nonfinite(self):
        tree = AIT(_dataset())
        with pytest.raises(InvalidIntervalError, match=r"must be finite.*at position 1"):
            tree.insert_many([0.0, float("nan")], [1.0, 2.0])


# --------------------------------------------------------------------------- #
# engine / gateway state errors
# --------------------------------------------------------------------------- #
class TestServiceStateErrors:
    def test_weighted_engine_rejects_insert(self):
        data = IntervalDataset([0.0, 1.0], [2.0, 3.0], weights=[1.0, 2.0])
        engine = ShardedEngine(data, num_shards=2)
        try:
            with pytest.raises(StructureStateError, match=r"weighted engines are static"):
                engine.insert_many([0.0], [1.0])
            with pytest.raises(StructureStateError, match=r"weighted engines are static"):
                engine.delete_many([0])
        finally:
            engine.close()

    def test_shard_of_unknown_id(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        try:
            with pytest.raises(KeyError, match=r"never assigned"):
                engine.shard_of(10**9)
        finally:
            engine.close()

    def test_sample_many_empty_result_raises(self):
        engine = ShardedEngine(_dataset(), num_shards=2)
        try:
            with pytest.raises(EmptyResultError, match=r"matched no intervals"):
                engine.sample_many(
                    np.array([[1e6, 1e6 + 1.0]]), 4, on_empty="raise", random_state=0
                )
        finally:
            engine.close()

    def test_gateway_submit_after_close(self):
        with ShardedEngine(_dataset(), num_shards=2) as engine:
            gateway = RequestGateway(engine, max_wait_ms=1.0)
            gateway.close()
            with pytest.raises(GatewayClosedError, match=r"gateway is closed"):
                gateway.submit("count", (0.0, 5.0))

    def test_gateway_malformed_query(self):
        with ShardedEngine(_dataset(), num_shards=2) as engine:
            with RequestGateway(engine, max_wait_ms=1.0) as gateway:
                with pytest.raises(InvalidQueryError, match=r"Interval or a \(left, right\) pair"):
                    gateway.submit("count", object())

    def test_gateway_submit_when_overloaded(self):
        with ShardedEngine(_dataset(), num_shards=2) as engine:
            gateway = RequestGateway(engine, max_queue_depth=2, start=False)
            gateway.submit("count", (0.0, 5.0))
            gateway.submit("count", (0.0, 5.0))
            with pytest.raises(
                GatewayOverloadError,
                match=r"gateway overloaded: 2 requests queued \(max_queue_depth=2\)",
            ):
                gateway.submit("count", (0.0, 5.0))
            gateway.close()

    def test_worker_op_timeout(self):
        """The executor's op-timeout raise site: typed error, pinned message."""
        import queue as queue_module

        from repro.service import ProcessExecutor
        from repro.service.executor import _Worker

        class _StubProcess:
            pid = 4242

            def is_alive(self):
                return True

        class _StubQueue:
            def get(self, timeout=None):
                raise queue_module.Empty

        executor = ProcessExecutor(op_timeout=0.01)
        worker = _Worker(_StubProcess(), _StubQueue(), _StubQueue())
        try:
            with pytest.raises(
                WorkerTimeoutError,
                match=r"shard worker \(pid 4242\) did not reply within 0s",
            ):
                executor._await(worker)
        finally:
            executor._workers.clear()
            executor.shutdown()


# --------------------------------------------------------------------------- #
# executor resolution (resolve_executor)
# --------------------------------------------------------------------------- #
class TestExecutorResolution:
    @pytest.mark.parametrize("name", ["serial", "threads", "process"])
    def test_known_names_resolve_and_are_owned(self, name):
        executor, owned = resolve_executor(name)
        try:
            assert owned is True
            assert executor.kind == name
            assert name in EXECUTOR_NAMES
        finally:
            executor.shutdown()

    @pytest.mark.parametrize("name", ["processes", "thread", "fork", ""])
    def test_unknown_name_raises_value_error(self, name):
        with pytest.raises(
            ValueError,
            match=r"unknown executor name .*: expected one of 'serial', 'threads', 'process'",
        ):
            resolve_executor(name)

    def test_non_map_object_raises_type_error(self):
        with pytest.raises(
            TypeError, match=r"executor must be None, 'serial', 'threads', 'process' or an object"
        ):
            resolve_executor(object())

    def test_map_object_is_adopted_not_owned(self):
        class MapOnly:
            def map(self, fn, items):
                return [fn(item) for item in items]

        custom = MapOnly()
        executor, owned = resolve_executor(custom)
        assert executor is custom
        assert owned is False

    def test_engine_surfaces_unknown_executor_name(self):
        with pytest.raises(ValueError, match=r"unknown executor name 'procces'"):
            ShardedEngine(_dataset(), num_shards=2, executor="procces")

    @pytest.mark.parametrize("mode", ["queries", "shard", ""])
    def test_unknown_scatter_mode_raises_value_error(self, mode):
        from repro.service import ProcessExecutor

        with pytest.raises(
            ValueError,
            match=r"unknown scatter mode .*: expected one of 'data', 'query', 'auto'",
        ):
            ProcessExecutor(scatter=mode)

    @pytest.mark.parametrize("block_size", [0, -3])
    def test_non_positive_block_size_raises_value_error(self, block_size):
        from repro.service import ProcessExecutor

        with pytest.raises(ValueError, match=r"block_size must be a positive integer"):
            ProcessExecutor(scatter="query", block_size=block_size)

    @pytest.mark.parametrize("executor", [None, "serial", "threads"])
    def test_scatter_requires_process_executor(self, executor):
        with pytest.raises(ValueError, match=r"scatter='query' requires executor='process'"):
            resolve_executor(executor, scatter="query")

    def test_engine_surfaces_scatter_without_process(self):
        with pytest.raises(ValueError, match=r"scatter='data' requires executor='process'"):
            ShardedEngine(_dataset(), num_shards=2, executor="threads", scatter="data")


# --------------------------------------------------------------------------- #
# kernel backend resolution
# --------------------------------------------------------------------------- #
class TestKernelBackendResolution:
    @pytest.mark.parametrize("name", ["numpyy", "jit", "cython", ""])
    def test_unknown_name_raises_value_error(self, name):
        with pytest.raises(
            ValueError,
            match=r"unknown kernel backend .*: expected one of 'numpy', 'numba', 'python'",
        ):
            get_backend(name)

    def test_non_backend_object_raises_type_error(self):
        with pytest.raises(
            TypeError,
            match=r"kernel_backend must be None, a backend name, or a KernelBackend instance",
        ):
            resolve_backend(object())

    def test_tree_surfaces_unknown_backend_name(self):
        with pytest.raises(ValueError, match=r"unknown kernel backend 'fortran'"):
            AIT(_dataset(), kernel_backend="fortran")

    def test_engine_surfaces_unknown_backend_name(self):
        with pytest.raises(ValueError, match=r"unknown kernel backend 'fortran'"):
            ShardedEngine(_dataset(), num_shards=2, kernel_backend="fortran")
