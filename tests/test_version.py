"""Version drift guard: the package and pyproject must agree.

``repro.__version__`` is what running code reports (bench payloads, stats);
``pyproject.toml`` is what an installed distribution claims.  The two are
maintained by hand in two files, so this test is the only thing keeping a
release bump from landing in one place and not the other.
"""

from __future__ import annotations

import re
import tomllib
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def test_package_version_matches_pyproject():
    with PYPROJECT.open("rb") as handle:
        pyproject = tomllib.load(handle)
    assert repro.__version__ == pyproject["project"]["version"]


def test_version_is_semver_shaped():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__), repro.__version__
