"""Tests for the kd-tree canonical-cover index and the KDS sampling baseline."""

from __future__ import annotations

import pytest

from repro import IntervalDataset
from repro.baselines import KDS, KDTreeIndex
from repro.stats import chi_square_uniformity, chi_square_weighted


class TestKDTree:
    def test_leaf_size_validation(self, random_dataset):
        with pytest.raises(ValueError):
            KDTreeIndex(random_dataset, leaf_size=0)

    def test_ordered_ids_is_a_permutation(self, random_dataset):
        index = KDTreeIndex(random_dataset)
        assert sorted(index.ordered_ids.tolist()) == list(range(len(random_dataset)))

    def test_count_matches_oracle(self, random_dataset, make_queries):
        index = KDTreeIndex(random_dataset)
        for query in make_queries(random_dataset, count=30):
            assert index.count(query) == random_dataset.overlap_count(*query)

    def test_report_matches_oracle(self, random_dataset, make_queries, ground_truth):
        index = KDTreeIndex(random_dataset)
        for query in make_queries(random_dataset, count=20):
            assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_cover_components_are_disjoint(self, random_dataset, make_queries):
        index = KDTreeIndex(random_dataset)
        for query in make_queries(random_dataset, count=10, extent=0.2):
            cover = index.canonical_cover(query)
            seen: set[int] = set()
            for node in cover.full_nodes:
                ids = index.ordered_ids[node.lo : node.hi].tolist()
                assert not (seen & set(ids))
                seen.update(ids)
            partial = set(cover.partial_ids.tolist())
            assert not (seen & partial)

    def test_small_leaf_size_still_correct(self, random_dataset, make_queries, ground_truth):
        index = KDTreeIndex(random_dataset, leaf_size=2)
        for query in make_queries(random_dataset, count=10):
            assert set(index.report(query).tolist()) == ground_truth(random_dataset, query)

    def test_weight_prefix_only_for_weighted(self, random_dataset, weighted_dataset):
        assert KDTreeIndex(random_dataset).weight_prefix is None
        assert KDTreeIndex(weighted_dataset).weight_prefix is not None

    def test_memory_bytes_positive(self, random_dataset):
        assert KDTreeIndex(random_dataset).memory_bytes() > 0

    def test_empty_query_region(self, random_dataset):
        index = KDTreeIndex(random_dataset)
        _, hi = random_dataset.domain()
        assert index.count((hi + 5.0, hi + 6.0)) == 0


class TestKDS:
    def test_samples_are_members(self, random_dataset, make_queries, ground_truth):
        index = KDS(random_dataset)
        for query in make_queries(random_dataset, count=10):
            truth = ground_truth(random_dataset, query)
            if not truth:
                continue
            samples = index.sample(query, 150, random_state=0)
            assert set(samples.tolist()) <= truth

    def test_sample_size_respected(self, random_dataset, make_queries):
        index = KDS(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        assert index.sample(query, 333, random_state=1).shape == (333,)

    def test_uniform_sampling_distribution(self, random_dataset, make_queries, ground_truth):
        index = KDS(random_dataset)
        query = make_queries(random_dataset, count=1, extent=0.12, seed=9)[0]
        truth = sorted(ground_truth(random_dataset, query))
        samples = index.sample(query, 40 * len(truth), random_state=2)
        assert not chi_square_uniformity(samples.tolist(), truth).rejects_uniformity(alpha=1e-4)

    def test_weighted_sampling_distribution(self, weighted_dataset, make_queries, ground_truth):
        index = KDS(weighted_dataset, weighted=True)
        assert index.is_weighted
        query = make_queries(weighted_dataset, count=1, extent=0.12, seed=10)[0]
        truth = sorted(ground_truth(weighted_dataset, query))
        weights = weighted_dataset.weights[truth]
        samples = index.sample(query, 60 * len(truth), random_state=3)
        fit = chi_square_weighted(samples.tolist(), truth, weights.tolist())
        assert not fit.rejects_uniformity(alpha=1e-4)

    def test_weighted_flag_on_unweighted_dataset(self, random_dataset, make_queries, ground_truth):
        index = KDS(random_dataset, weighted=True)
        query = make_queries(random_dataset, count=1)[0]
        truth = ground_truth(random_dataset, query)
        samples = index.sample(query, 100, random_state=4)
        assert set(samples.tolist()) <= truth

    def test_empty_result_behaviour(self, random_dataset):
        from repro import EmptyResultError

        index = KDS(random_dataset)
        _, hi = random_dataset.domain()
        assert index.sample((hi + 1.0, hi + 2.0), 10).shape == (0,)
        with pytest.raises(EmptyResultError):
            index.sample((hi + 1.0, hi + 2.0), 10, on_empty="raise")

    def test_sample_zero(self, random_dataset, make_queries):
        index = KDS(random_dataset)
        query = make_queries(random_dataset, count=1)[0]
        assert index.sample(query, 0).shape == (0,)

    def test_zero_weight_points_never_sampled_weighted(self):
        dataset = IntervalDataset([0.0, 1.0, 2.0], [10.0, 11.0, 12.0], weights=[1.0, 0.0, 3.0])
        index = KDS(dataset, weighted=True)
        samples = index.sample((0.0, 20.0), 2000, random_state=5)
        assert 1 not in set(samples.tolist())
