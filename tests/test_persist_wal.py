"""Tests for the write-ahead DeltaLog and the fault-injection utilities."""

from __future__ import annotations

import os

import numpy as np
import pytest

import zlib

from repro import WALCorruptError
import importlib

from repro.persist import CHECKSUM_ALGORITHM, DeltaLog, FaultInjector, FaultyFile, WriteFault, flip_byte, truncate_file
from repro.persist import wal as wal_module

# the package re-exports the checksum *function*, shadowing the submodule name
checksum_module = importlib.import_module("repro.persist.checksum")
from repro.persist.wal import HEADER_SIZE, wal_epoch


def _write_batches(path, fsync="none", epoch=0):
    log = DeltaLog(path, fsync=fsync, epoch=epoch)
    log.append_insert([0, 1, 2], [1.0, 2.0, 3.0], [4.0, 5.0, 6.0])
    log.append_delete([1])
    log.append_insert([3], [10.0], [20.0])
    log.close()


class TestRecordRoundTrip:
    def test_scan_returns_appended_records(self, tmp_path):
        path = str(tmp_path / "a.log")
        _write_batches(path, epoch=7)
        epoch, records, valid = DeltaLog.scan(path)
        assert epoch == 7
        assert valid == os.path.getsize(path)
        kinds = [r[0] for r in records]
        assert kinds == ["insert_many", "delete_many", "insert_many"]
        ids, lefts, rights = records[0][1], records[0][2], records[0][3]
        np.testing.assert_array_equal(ids, [0, 1, 2])
        np.testing.assert_array_equal(lefts, [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(rights, [4.0, 5.0, 6.0])
        np.testing.assert_array_equal(records[1][1], [1])

    def test_wal_epoch_helper(self, tmp_path):
        path = str(tmp_path / "e.log")
        _write_batches(path, epoch=12)
        assert wal_epoch(path) == 12

    def test_missing_or_empty_file_scans_clean(self, tmp_path):
        missing = str(tmp_path / "missing.log")
        assert DeltaLog.scan(missing) == (0, [], 0)
        empty = str(tmp_path / "empty.log")
        open(empty, "wb").close()
        assert DeltaLog.scan(empty) == (0, [], 0)

    def test_reopen_appends_after_existing_records(self, tmp_path):
        path = str(tmp_path / "reopen.log")
        _write_batches(path, epoch=3)
        log = DeltaLog(path, fsync="none", epoch=3, create=False)
        log.append_delete([0, 2])
        log.close()
        _, records, _ = DeltaLog.scan(path)
        assert len(records) == 4 and records[-1][0] == "delete_many"

    @pytest.mark.parametrize("policy", ["always", "batch", "none"])
    def test_fsync_policies_accepted(self, tmp_path, policy):
        path = str(tmp_path / f"{policy}.log")
        log = DeltaLog(path, fsync=policy)
        log.append_insert([0], [0.0], [1.0])
        log.sync()
        log.close()
        _, records, _ = DeltaLog.scan(path)
        assert len(records) == 1

    def test_unknown_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match=r"fsync"):
            DeltaLog(str(tmp_path / "bad.log"), fsync="sometimes")

    def test_close_is_idempotent(self, tmp_path):
        log = DeltaLog(str(tmp_path / "c.log"))
        log.close()
        log.close()


class TestTornTails:
    def test_truncated_record_is_dropped_not_fatal(self, tmp_path):
        path = str(tmp_path / "torn.log")
        _write_batches(path)
        truncate_file(path, os.path.getsize(path) - 5)
        _, records, valid = DeltaLog.scan(path)
        assert len(records) == 2  # last record torn away
        assert valid < os.path.getsize(path)

    def test_bit_flip_in_tail_record_is_dropped(self, tmp_path):
        path = str(tmp_path / "flip.log")
        _write_batches(path)
        flip_byte(path, os.path.getsize(path) - 3)
        _, records, _ = DeltaLog.scan(path)
        assert len(records) == 2

    def test_corruption_mid_log_drops_suffix(self, tmp_path):
        path = str(tmp_path / "mid.log")
        _write_batches(path)
        flip_byte(path, HEADER_SIZE + 10)  # inside the first record body
        _, records, _ = DeltaLog.scan(path)
        assert records == []

    def test_recover_truncates_torn_tail(self, tmp_path):
        path = str(tmp_path / "rec.log")
        _write_batches(path, epoch=4)
        torn_size = os.path.getsize(path) - 5
        truncate_file(path, torn_size)
        log, records = DeltaLog.recover(path, fsync="none", epoch=4)
        assert len(records) == 2
        # the torn suffix was physically removed so appends resume cleanly
        log.append_delete([9])
        log.close()
        _, records2, valid = DeltaLog.scan(path)
        assert [r[0] for r in records2] == ["insert_many", "delete_many", "delete_many"]
        assert valid == os.path.getsize(path)

    def test_corrupt_header_raises(self, tmp_path):
        path = str(tmp_path / "hdr.log")
        _write_batches(path)
        flip_byte(path, 2)  # inside the magic
        with pytest.raises(WALCorruptError):
            DeltaLog.scan(path)


def _adler(data, value: int = 0) -> int:
    """A stand-in 'foreign' checksum algorithm, guaranteed != crc32/crc32c."""
    return zlib.adler32(bytes(data)) & 0xFFFFFFFF


@pytest.fixture
def foreign_algorithm(monkeypatch):
    """Register 'adler32' and make it the preferred write-time algorithm."""
    monkeypatch.setitem(checksum_module._ALGORITHMS, "adler32", _adler)
    monkeypatch.setattr(wal_module, "CHECKSUM_ALGORITHM", "adler32")
    return "adler32"


class TestChecksumAlgorithm:
    """The WAL header records the record-checksum algorithm (REVIEW issue:
    without it, a log written under crc32c and scanned under crc32 — or vice
    versa — failed every record check and was silently truncated as an
    all-torn tail, destroying acknowledged writes)."""

    def test_header_records_runtime_algorithm(self, tmp_path):
        path = str(tmp_path / "alg.log")
        log = DeltaLog(path, fsync="none")
        assert log.checksum_algorithm == CHECKSUM_ALGORITHM
        log.close()

    def test_scan_verifies_with_header_algorithm_not_runtime_preference(
        self, tmp_path, monkeypatch, foreign_algorithm
    ):
        path = str(tmp_path / "cross.log")
        _write_batches(path, epoch=5)  # written with adler32 digests
        # Flip the runtime preference back: a reader that trusted its own
        # preferred algorithm would now fail every record and report a fully
        # torn log; header-driven resolution must still see all 3 records.
        monkeypatch.setattr(wal_module, "CHECKSUM_ALGORITHM", "crc32")
        epoch, records, valid = DeltaLog.scan(path)
        assert epoch == 5
        assert len(records) == 3
        assert valid == os.path.getsize(path)

    def test_reopen_keeps_the_file_algorithm_for_new_appends(
        self, tmp_path, monkeypatch, foreign_algorithm
    ):
        path = str(tmp_path / "mix.log")
        _write_batches(path, epoch=2)
        monkeypatch.setattr(wal_module, "CHECKSUM_ALGORITHM", "crc32")
        log = DeltaLog(path, fsync="none", create=False)
        assert log.checksum_algorithm == "adler32"  # file wins, not runtime
        log.append_delete([7])
        log.close()
        _, records, valid = DeltaLog.scan(path)
        assert len(records) == 4 and valid == os.path.getsize(path)

    def test_unresolvable_algorithm_raises_instead_of_truncating(
        self, tmp_path, monkeypatch, foreign_algorithm
    ):
        path = str(tmp_path / "lost.log")
        _write_batches(path, epoch=1)
        size = os.path.getsize(path)
        # Simulate reading the log on a host without the writer's algorithm.
        monkeypatch.delitem(checksum_module._ALGORITHMS, "adler32")
        with pytest.raises(WALCorruptError, match=r"cannot verify"):
            DeltaLog.scan(path)
        with pytest.raises(WALCorruptError, match=r"cannot verify"):
            DeltaLog.recover(path, fsync="none", epoch=1)
        # recover must not have "repaired" the file by truncating it
        assert os.path.getsize(path) == size


class TestFaultInjection:
    def test_faulty_file_partial_write(self, tmp_path):
        path = str(tmp_path / "partial.bin")
        handle = FaultyFile(open(path, "wb"), fail_write_at=10)
        handle.write(b"01234")
        with pytest.raises(WriteFault):
            handle.write(b"56789ABCDEF")
        handle.close()
        # the failing write persisted only the prefix up to the fault point
        assert os.path.getsize(path) == 10

    def test_faulty_file_torn_write(self, tmp_path):
        path = str(tmp_path / "tear.bin")
        handle = FaultyFile(open(path, "wb"), torn_after=7)
        handle.write(b"0123456789")  # silently torn after 7 bytes
        handle.close()
        assert os.path.getsize(path) == 7

    def test_fault_injector_matches_by_name(self, tmp_path):
        injector = FaultInjector(torn_after=4, match="wal")
        wal_path = str(tmp_path / "x.wal")
        other_path = str(tmp_path / "other.bin")
        with injector(wal_path, "wb") as handle:
            handle.write(b"ABCDEFGH")
        with injector(other_path, "wb") as handle:
            handle.write(b"ABCDEFGH")
        assert os.path.getsize(wal_path) == 4
        assert os.path.getsize(other_path) == 8

    def test_torn_wal_write_recovers_prefix(self, tmp_path):
        """End-to-end: a torn append is invisible after recovery."""
        path = str(tmp_path / "torn_append.log")
        log = DeltaLog(path, fsync="none", epoch=1)
        log.append_insert([0, 1], [0.0, 1.0], [2.0, 3.0])
        log.close()
        good_size = os.path.getsize(path)

        # re-open through a fault injector that tears the next append
        injector = FaultInjector(torn_after=6, match="torn_append")
        log = DeltaLog(path, fsync="none", epoch=1, create=False, opener=injector)
        log.append_delete([0])
        log.close(sync=False)

        _, records, valid = DeltaLog.scan(path)
        assert len(records) == 1 and records[0][0] == "insert_many"
        assert valid == good_size
